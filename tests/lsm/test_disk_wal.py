"""Tests for the simulated disk, timing model and WAL."""

import pytest

from repro.errors import ConfigError
from repro.lsm import DiskTimingModel, IoStats, Record, SimulatedDisk, WriteAheadLog


class TestTimingModel:
    def test_transfer_seconds(self):
        model = DiskTimingModel(bandwidth_bytes_per_sec=100.0, seek_seconds=1.0)
        assert model.transfer_seconds(50) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiskTimingModel(bandwidth_bytes_per_sec=0)
        with pytest.raises(ConfigError):
            DiskTimingModel(seek_seconds=-1)


class TestSimulatedDisk:
    def test_accounting(self):
        disk = SimulatedDisk()
        disk.read(100)
        disk.read(50)
        disk.write(200)
        assert disk.stats.bytes_read == 150
        assert disk.stats.bytes_written == 200
        assert disk.stats.bytes_total == 350
        assert disk.stats.read_ops == 2
        assert disk.stats.write_ops == 1

    def test_durations_follow_model(self):
        disk = SimulatedDisk(DiskTimingModel(bandwidth_bytes_per_sec=1000.0, seek_seconds=0.5))
        assert disk.read(500) == pytest.approx(1.0)
        assert disk.write(1000) == pytest.approx(1.5)

    def test_negative_io_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ConfigError):
            disk.read(-1)
        with pytest.raises(ConfigError):
            disk.write(-1)

    def test_snapshot_delta(self):
        disk = SimulatedDisk()
        disk.write(10)
        before = disk.stats.snapshot()
        disk.write(25)
        delta = disk.stats.delta(before)
        assert delta.bytes_written == 25
        assert delta.write_ops == 1

    def test_stats_add(self):
        total = IoStats()
        total.add(IoStats(bytes_read=5, bytes_written=7, read_ops=1, write_ops=2))
        assert total.bytes_total == 12


class TestWal:
    def test_append_and_replay(self):
        wal = WriteAheadLog()
        wal.append(Record.put("a", 1, value_size=10))
        wal.append(Record.delete("a", 2))
        assert len(wal) == 2
        assert [r.seqno for r in wal.replay()] == [1, 2]

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append(Record.put("a", 1))
        wal.truncate()
        assert wal.is_empty
        assert wal.truncations == 1
        assert wal.bytes_appended_total > 0  # cumulative, not reset

    def test_disk_accounting(self):
        disk = SimulatedDisk()
        wal = WriteAheadLog(disk)
        record = Record.put("a", 1, value_size=100)
        wal.append(record)
        assert disk.stats.bytes_written == record.size_bytes
