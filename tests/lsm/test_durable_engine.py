"""Tests for the durable engine: open/recover, crash ordering, corruption."""

import pytest

from repro.errors import CorruptionError, StorageError
from repro.lsm import (
    DurableLSMEngine,
    EngineConfig,
    LSMEngine,
    LocalFileSystem,
    MajorCompaction,
    MemoryFileSystem,
)
from repro.lsm.format.manifest import MANIFEST_NAME, MANIFEST_TMP_NAME


def open_engine(fs, capacity=5, **kwargs):
    config = EngineConfig(memtable_capacity=capacity, **kwargs)
    return DurableLSMEngine.open(fs=fs, config=config)


class TestOpenAndRecover:
    def test_fresh_directory_starts_empty(self):
        engine = open_engine(MemoryFileSystem())
        assert engine.table_count == 0
        assert engine.get(1) is None

    def test_lsmengine_open_returns_durable_engine(self, tmp_path):
        engine = LSMEngine.open(tmp_path)
        assert isinstance(engine, DurableLSMEngine)

    def test_state_rebuilt_from_files_alone(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        for i in range(23):
            engine.put(i % 11, value_size=10 + i)
        engine.delete(3)
        expected = {i: engine.get(i) is not None for i in range(11)}
        # A brand-new engine over the same filesystem: no shared state.
        recovered = open_engine(fs)
        assert {i: recovered.get(i) is not None for i in range(11)} == expected
        assert recovered.table_count == engine.table_count
        assert recovered._seqno == engine._seqno

    def test_real_directory_round_trip(self, tmp_path):
        engine = DurableLSMEngine.open(
            tmp_path, config=EngineConfig(memtable_capacity=4)
        )
        for i in range(9):
            engine.put(i, value=b"v%d" % i)
        engine.delete(2)
        recovered = DurableLSMEngine.open(
            tmp_path, config=EngineConfig(memtable_capacity=4)
        )
        assert recovered.get(7).value == b"v7"
        assert recovered.get(2) is None

    def test_seqno_continuity_after_reopen(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put("k", value=b"before")
        recovered = open_engine(fs)
        recovered.put("k", value=b"after")
        recovered.flush()
        assert recovered.get("k").value == b"after"

    def test_compaction_survives_reopen(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs, capacity=4)
        for i in range(12):
            engine.put(i)
        engine.compact(MajorCompaction("SI"))
        engine.put("fresh")
        recovered = open_engine(fs, capacity=4)
        assert recovered.table_count == 1
        assert recovered.get("fresh") is not None
        assert recovered.get(3) is not None

    def test_compaction_removes_dead_files(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs, capacity=4)
        for i in range(12):
            engine.put(i)
        engine.compact(MajorCompaction("SI"))
        sst_files = [name for name in fs.listdir() if name.endswith(".sst")]
        assert len(sst_files) == 1

    def test_without_wal_unflushed_writes_are_lost(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs, use_wal=False)
        engine.put("durable")
        engine.flush()
        engine.put("volatile")
        recovered = open_engine(fs, use_wal=False)
        assert recovered.get("durable") is not None
        assert recovered.get("volatile") is None

    def test_simulate_crash_and_recover_reopens(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put("k", value=b"v")
        recovered = engine.simulate_crash_and_recover()
        assert isinstance(recovered, DurableLSMEngine)
        assert recovered.get("k").value == b"v"

    def test_requires_directory_or_fs(self):
        with pytest.raises(StorageError):
            DurableLSMEngine.open()
        with pytest.raises(StorageError):
            DurableLSMEngine(EngineConfig())

    def test_read_and_scan_paths_work_on_loaded_tables(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs, capacity=4)
        for i in range(10):
            engine.put(i, value_size=i + 1)
        recovered = open_engine(fs, capacity=4)
        assert [r.key for r in recovered.scan(3, 4)] == [3, 4, 5, 6]
        assert recovered.get(8).value_size == 9


class TestDurableMidReplayFlush:
    """Reopening under a smaller memtable forces flushes mid-replay;
    the WAL must not be truncated until replay is fully absorbed."""

    def filled_fs(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs, capacity=10)
        for i in range(7):
            engine.put(i, value_size=i + 1)
        return fs

    def test_mid_replay_flush_commits_without_truncating_wal(self):
        fs = self.filled_fs()
        recovered = open_engine(fs, capacity=2)
        assert recovered.flush_count >= 1
        for i in range(7):
            assert recovered.get(i).value_size == i + 1
        # The log still holds every surviving record: replay never
        # truncates, only a post-recovery flush may.
        assert fs.size("wal.log") > 0

    def test_crash_at_every_point_of_mid_replay_recovery(self):
        from repro.lsm import CrashPoint, FaultInjectedFileSystem, FaultPlan

        base = self.filled_fs()
        snapshot = {name: base.read_bytes(name) for name in base.listdir()}

        def restored():
            fs = MemoryFileSystem()
            for name, data in snapshot.items():
                handle = fs.open_write(name)
                handle.append(data)
                handle.close()
            return fs

        probe = FaultInjectedFileSystem(restored())
        open_engine(probe, capacity=2)
        points = [
            FaultPlan(crash_at_write=n) for n in range(1, probe.writes_done + 1)
        ] + [FaultPlan(crash_at_sync=n) for n in range(1, probe.syncs_done + 1)]
        assert points, "mid-replay recovery must hit fault points"
        for plan in points:
            crashed = FaultInjectedFileSystem(restored(), plan)
            try:
                open_engine(crashed, capacity=2)
            except CrashPoint:
                pass
            final = open_engine(crashed.base, capacity=2)
            for i in range(7):
                record = final.get(i)
                assert record is not None, f"{plan}: lost key {i}"
                assert record.value_size == i + 1, f"{plan}: stale key {i}"


class TestRecoveryHousekeeping:
    def test_orphan_sstables_swept(self):
        """A .sst never named by a manifest (crash before the commit
        rename) is invisible garbage and gets removed on open."""
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1)
        engine.flush()
        handle = fs.open_write("000099.sst")
        handle.append(b"half-written table")
        handle.close()
        open_engine(fs)
        assert not fs.exists("000099.sst")
        assert fs.exists("000000.sst")  # the committed table stays

    def test_stale_manifest_tmp_removed(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1)
        engine.flush()
        handle = fs.open_write(MANIFEST_TMP_NAME)
        handle.append(b"torn manifest rewrite")
        handle.close()
        recovered = open_engine(fs)
        assert not fs.exists(MANIFEST_TMP_NAME)
        assert recovered.get(1) is not None

    def test_non_table_files_left_alone(self):
        fs = MemoryFileSystem()
        handle = fs.open_write("notes.txt")
        handle.append(b"keep me")
        handle.close()
        open_engine(fs)
        assert fs.exists("notes.txt")


class TestDurableCorruption:
    def test_corrupt_sstable_block_raises_typed_error(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1, value=b"payload")
        engine.flush()
        fs.flip_bit("000000.sst", 4)
        with pytest.raises(CorruptionError):
            open_engine(fs)

    def test_missing_live_table_raises(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1)
        engine.flush()
        fs.remove("000000.sst")
        with pytest.raises(CorruptionError):
            open_engine(fs)

    def test_corrupt_manifest_raises(self):
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1)
        engine.flush()
        fs.flip_bit(MANIFEST_NAME, 9)
        with pytest.raises(CorruptionError):
            open_engine(fs)

    def test_corrupt_wal_tail_degrades_gracefully(self):
        """A flipped bit in the WAL's final frame loses that record only
        — recovery proceeds with everything durable before it."""
        fs = MemoryFileSystem()
        engine = open_engine(fs)
        engine.put(1, value=b"first")
        engine.put(2, value=b"second")
        fs.flip_bit("wal.log", fs.size("wal.log") - 1)
        recovered = open_engine(fs)
        assert recovered.get(1).value == b"first"
        assert recovered.get(2) is None  # the torn record is gone

    def test_local_filesystem_corruption_detection(self, tmp_path):
        fs = LocalFileSystem(tmp_path)
        engine = open_engine(fs)
        engine.put(1, value=b"payload")
        engine.flush()
        fs.flip_bit("000000.sst", 4)
        with pytest.raises(CorruptionError):
            open_engine(LocalFileSystem(tmp_path))
