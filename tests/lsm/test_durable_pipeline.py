"""The durable write pipeline: segmented WAL rotation, recovery, GC.

:class:`DurablePipelinedLSMEngine` composes the freeze/rotation
protocol with the durability tier: one ``wal-NNNNNN.log`` segment per
frozen memtable, synced before rotation, garbage-collected only after
the manifest commit covers its records.  These tests pin the segment
lifecycle and the recovery path; the crash sweep at every fault point
lives in test_crash_harness.py.
"""

import pytest

from repro.errors import ConfigError
from repro.lsm import (
    DurableLSMEngine,
    DurablePipelinedLSMEngine,
    EngineConfig,
    MemoryFileSystem,
)
from repro.lsm.pipeline import _segment_index, _segment_name

CONFIG = EngineConfig(memtable_capacity=4)


def _segments(fs):
    return sorted(
        (name for name in fs.listdir() if _segment_index(name) is not None),
        key=_segment_index,
    )


class TestSegmentLifecycle:
    def test_freeze_rotates_into_numbered_segments(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        for i in range(10):  # two freezes at capacity 4, queue holds both
            engine.put(i, value_size=30)
        assert engine.immutable_count == 2
        # Two frozen segments plus the active one.
        assert len(_segments(fs)) == 3

    def test_flush_collects_covered_segments(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        for i in range(10):
            engine.put(i, value_size=30)
        engine.flush()
        assert engine.immutable_count == 0
        # Everything durable in sstables; only the active segment stays.
        remaining = _segments(fs)
        assert len(remaining) == 1
        assert any(name.endswith(".sst") for name in fs.listdir())

    def test_backpressure_flushes_inline_and_counts_stalls(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=EngineConfig(memtable_capacity=3),
            max_immutable_memtables=1,
        )
        for i in range(40):
            engine.put(i, value_size=30)
        assert engine.write_stall_count > 0
        assert engine.write_stall_seconds >= 0.0
        assert engine.immutable_count <= 1
        for i in range(40):
            assert engine.get(i) is not None

    def test_segment_names_monotonic_across_reopen(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        for i in range(6):
            engine.put(i, value_size=30)
        first_gen = set(_segments(fs))
        engine = engine.simulate_crash_and_recover()
        engine.put(99, value_size=30)
        # The reopened engine's fresh active segment never reuses an
        # existing index.
        new_segments = set(_segments(fs)) - first_gen
        assert new_segments, "reopen must rotate a fresh segment"
        assert min(
            _segment_index(name) for name in new_segments
        ) > max(_segment_index(name) for name in first_gen)


class TestRecovery:
    def test_recovery_replays_active_and_frozen_segments(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        model = {}
        for i in range(23):  # freezes in the queue + a partial active
            key = i % 9
            engine.put(key, value_size=i + 1)
            model[key] = i + 1
        assert engine.immutable_count > 0
        recovered = engine.simulate_crash_and_recover()
        for key, size in model.items():
            record = recovered.get(key)
            assert record is not None, f"lost key {key}"
            assert record.value_size == size
        assert recovered.get(1000) is None

    def test_double_reopen_stable(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        for i in range(15):
            engine.put(i, value_size=40)
        once = engine.simulate_crash_and_recover()
        twice = once.simulate_crash_and_recover()
        for i in range(15):
            assert twice.get(i) is not None

    def test_plain_durable_store_opens_in_pipelined_engine(self):
        """The segmented engine reads a legacy wal.log store."""
        fs = MemoryFileSystem()
        plain = DurableLSMEngine.open(fs=fs, config=CONFIG)
        for i in range(7):
            plain.put(i, value_size=25)
        upgraded = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=4
        )
        for i in range(7):
            assert upgraded.get(i) is not None
        upgraded.put(100, value_size=25)
        upgraded.flush()
        reopened = upgraded.simulate_crash_and_recover()
        for i in list(range(7)) + [100]:
            assert reopened.get(i) is not None

    def test_deletes_survive_freeze_and_recovery(self):
        fs = MemoryFileSystem()
        engine = DurablePipelinedLSMEngine.open(
            fs=fs, config=CONFIG, max_immutable_memtables=8
        )
        for i in range(8):
            engine.put(i, value_size=30)
        engine.delete(3)
        engine.delete(7)
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get(3) is None
        assert recovered.get(7) is None
        assert recovered.get(0) is not None


class TestValidation:
    def test_bad_queue_bound_rejected(self):
        with pytest.raises(ConfigError):
            DurablePipelinedLSMEngine(
                CONFIG, fs=MemoryFileSystem(), max_immutable_memtables=0
            )

    def test_segment_name_round_trip(self):
        assert _segment_index(_segment_name(42)) == 42
        assert _segment_index("wal.log") is None
        assert _segment_index("wal-xyz.log") is None
        assert _segment_index("000001.sst") is None
