"""Integration tests for the LSM engine's read/write path."""

import pytest

from repro.errors import ConfigError, StorageError
from repro.lsm import EngineConfig, LSMEngine, MajorCompaction
from repro.ycsb import CoreWorkload, Operation, OperationType, WorkloadConfig


def engine_with(capacity=5, mode="map", use_wal=True):
    return LSMEngine(
        EngineConfig(memtable_capacity=capacity, memtable_mode=mode, use_wal=use_wal)
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(memtable_capacity=0)
        with pytest.raises(ConfigError):
            EngineConfig(bloom_fp_rate=2.0)
        with pytest.raises(ConfigError):
            EngineConfig(memtable_mode="lsm")
        with pytest.raises(ConfigError):
            EngineConfig(default_value_size=-1)


class TestWritePath:
    def test_read_your_writes_from_memtable(self):
        engine = engine_with()
        engine.put("k", value=b"v1")
        assert engine.get("k").value == b"v1"
        assert engine.read_stats.memtable_hits == 1

    def test_flush_on_full_memtable(self):
        engine = engine_with(capacity=3)
        for i in range(7):
            engine.put(i)
        assert engine.flush_count == 2
        assert engine.table_count == 2

    def test_manual_flush(self):
        engine = engine_with()
        engine.put("k")
        table = engine.flush()
        assert table is not None
        assert engine.table_count == 1
        assert engine.flush() is None  # empty memtable

    def test_wal_truncated_on_flush(self):
        engine = engine_with()
        engine.put("k")
        assert len(engine.wal) == 1
        engine.flush()
        assert engine.wal.is_empty

    def test_flush_writes_to_disk(self):
        engine = engine_with(use_wal=False)
        engine.put("k", value_size=100)
        engine.flush()
        assert engine.disk.stats.bytes_written > 100


class TestReadPath:
    def test_read_from_sstable(self):
        engine = engine_with(capacity=2)
        engine.put("a", value=b"1")
        engine.put("b", value=b"2")
        engine.flush()
        assert engine.get("a").value == b"1"
        assert engine.read_stats.tables_probed == 1

    def test_newest_version_wins_across_tables(self):
        engine = engine_with(capacity=1)
        engine.put("k", value=b"old")
        engine.flush()
        engine.put("k", value=b"new")
        engine.flush()
        assert engine.get("k").value == b"new"

    def test_missing_key(self):
        engine = engine_with()
        engine.put("a")
        engine.flush()
        assert engine.get("zzz") is None
        assert engine.read_stats.misses == 1

    def test_delete_masks_older_put(self):
        engine = engine_with(capacity=1)
        engine.put("k", value=b"v")
        engine.flush()
        engine.delete("k")
        engine.flush()
        assert engine.get("k") is None

    def test_bloom_skips_counted(self):
        engine = engine_with(capacity=2)
        for i in range(8):
            engine.put(i)
        engine.flush()
        engine.get(0)
        assert engine.read_stats.bloom_skips + engine.read_stats.tables_probed >= 1

    def test_scan_merges_memtable_and_tables(self):
        engine = engine_with(capacity=3)
        engine.put("a", value=b"1")
        engine.put("b", value=b"2")
        engine.put("c", value=b"3")  # triggers nothing yet (cap 3)
        engine.flush()
        engine.put("b", value=b"2new")
        engine.delete("c")
        result = engine.scan("a", 10)
        assert [r.key for r in result] == ["a", "b"]
        assert result[1].value == b"2new"

    def test_scan_zero_length(self):
        assert engine_with().scan("a", 0) == []

    def test_scan_survives_heavily_tombstoned_prefix(self):
        # Regression: the old walk capped probing at length * 4 records
        # per table, silently under-returning when the scan start was
        # shadowed by more than ~4x tombstones.
        engine = engine_with(capacity=20, use_wal=False)
        for key in range(20):
            engine.put(key)
        engine.flush()
        for key in range(16):  # 16 tombstones > 4 * length
            engine.delete(key)
        engine.flush()
        assert [r.key for r in engine.scan(0, 4)] == [16, 17, 18, 19]

    def test_scan_exhausts_all_versions_before_truncating(self):
        # Every key overwritten across many tables: the walk must keep
        # resolving until `length` live keys exist, however deep the
        # version stacks are.
        engine = engine_with(capacity=4, use_wal=False)
        for _ in range(6):
            for key in range(4):
                engine.put(key)
        engine.flush()
        assert [r.key for r in engine.scan(0, 4)] == [0, 1, 2, 3]

    def test_scan_prunes_tables_below_start_key(self):
        engine = engine_with(capacity=10, use_wal=False)
        for key in range(10):
            engine.put(key)
        engine.flush()
        for key in range(100, 110):
            engine.put(key)
        engine.flush()
        result = engine.scan(50, 5)
        assert [r.key for r in result] == [100, 101, 102, 103, 104]
        assert engine.read_stats.scan_tables_pruned == 1
        assert engine.read_stats.scan_tables_probed == 1

    def test_scan_charges_disk_reads_and_stats(self):
        # Regression: scans used to perform disk reads without charging
        # the simulated disk or updating ReadStats at all.
        engine = engine_with(capacity=5, use_wal=False)
        for key in range(5):
            engine.put(key, value_size=100)
        engine.flush()
        before = engine.disk.stats.bytes_read
        result = engine.scan(0, 3)
        assert len(result) == 3
        charged = engine.disk.stats.bytes_read - before
        assert charged == sum(r.size_bytes for r in result)
        stats = engine.read_stats
        assert stats.scans == 1
        assert stats.scan_records_scanned == 3
        assert stats.scan_records_returned == 3
        assert stats.read_bytes == charged

    def test_scan_memtable_records_are_free(self):
        engine = engine_with(capacity=10, use_wal=False)
        for key in range(5):
            engine.put(key)
        before = engine.disk.stats.bytes_read
        assert len(engine.scan(0, 5)) == 5
        assert engine.disk.stats.bytes_read == before


class TestCompactionIntegration:
    def test_compact_to_single_table(self):
        engine = engine_with(capacity=2)
        for i in range(10):
            engine.put(i)
        result = engine.compact(MajorCompaction("SI"))
        assert engine.table_count == 1
        assert result.n_merges >= 1
        for i in range(10):
            assert engine.get(i) is not None

    def test_compact_drops_tombstones(self):
        engine = engine_with(capacity=2)
        for i in range(6):
            engine.put(i)
        engine.delete(3)
        engine.compact(MajorCompaction("BT(I)"))
        assert engine.get(3) is None
        assert 3 not in engine.sstables[0].key_set

    def test_compact_reduces_read_amplification(self):
        engine = engine_with(capacity=5)
        for round_ in range(6):
            for key in range(20):
                engine.put(key)
        engine.flush()
        assert engine.table_count > 5
        # probe before
        before = engine_probes(engine)
        engine.compact(MajorCompaction("BT(I)"))
        after = engine_probes(engine)
        assert after <= before
        assert engine.table_count == 1

    def test_compact_empty_engine_raises(self):
        with pytest.raises(StorageError):
            engine_with().compact()

    def test_compact_flushes_memtable_first(self):
        engine = engine_with(capacity=100)
        engine.put("only-in-memtable")
        engine.compact(MajorCompaction("SI"))
        assert engine.get("only-in-memtable") is not None

    def test_default_strategy(self):
        engine = engine_with(capacity=2)
        for i in range(6):
            engine.put(i)
        result = engine.compact()
        assert "balance_tree_input" in result.strategy_name


def engine_probes(engine) -> float:
    """Average tables probed for a fixed probe set."""
    start_reads = engine.read_stats.reads
    start_probes = engine.read_stats.tables_probed
    for key in range(20):
        engine.get(key)
    reads = engine.read_stats.reads - start_reads
    probes = engine.read_stats.tables_probed - start_probes
    return probes / reads


class TestWorkloadDriving:
    def test_apply_full_crud(self):
        engine = engine_with(capacity=50)
        engine.apply(Operation(OperationType.INSERT, "k", value_size=10))
        engine.apply(Operation(OperationType.UPDATE, "k", value_size=20))
        record = engine.apply(Operation(OperationType.READ, "k"))
        assert record.value_size == 20
        engine.apply(Operation(OperationType.DELETE, "k"))
        assert engine.apply(Operation(OperationType.READ, "k")) is None
        engine.apply(Operation(OperationType.INSERT, "a", value_size=1))
        scan = engine.apply(Operation(OperationType.SCAN, "a", scan_length=5))
        assert [r.key for r in scan] == ["a"]

    def test_ycsb_end_to_end(self):
        config = WorkloadConfig(
            recordcount=200,
            operationcount=1000,
            update_proportion=0.5,
            insert_proportion=0.3,
            read_proportion=0.2,
            distribution="zipfian",
            seed=11,
        )
        workload = CoreWorkload(config)
        engine = engine_with(capacity=100)
        for operation in workload.all_operations():
            engine.apply(operation)
        engine.flush()
        assert engine.table_count >= 2
        engine.compact(MajorCompaction("SO", hll_precision=10))
        assert engine.table_count == 1
        # every loaded key that was never deleted must be readable
        assert engine.get(0) is not None
