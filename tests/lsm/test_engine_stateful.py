"""Stateful property test: the LSM engine behaves like a dict.

Hypothesis drives random sequences of put/delete/get/flush/compact/
crash-recover operations against the engine and a model dictionary;
after every step, reads must agree.  This exercises the interaction of
memtable modes, flush boundaries, tombstones, compaction strategies and
WAL recovery far beyond what example-based tests cover.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.lsm import (
    DurableLSMEngine,
    EngineConfig,
    LSMEngine,
    MajorCompaction,
    MemoryFileSystem,
    SizeTieredCompaction,
)

KEYS = st.integers(0, 24)


class EngineModel(RuleBasedStateMachine):
    @initialize(
        capacity=st.integers(1, 8),
        mode=st.sampled_from(["map", "append"]),
    )
    def setup(self, capacity, mode):
        self.engine = LSMEngine(
            EngineConfig(memtable_capacity=capacity, memtable_mode=mode)
        )
        self.model: dict[int, int] = {}
        self.counter = 0

    @rule(key=KEYS)
    def put(self, key):
        self.counter += 1
        self.engine.put(key, value_size=self.counter)
        self.model[key] = self.counter

    @rule(key=KEYS)
    def delete(self, key):
        self.engine.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        record = self.engine.get(key)
        if key in self.model:
            assert record is not None, f"lost key {key}"
            assert record.value_size == self.model[key], f"stale value for {key}"
        else:
            assert record is None, f"phantom key {key}"

    @rule()
    def flush(self):
        self.engine.flush()

    @precondition(lambda self: self.engine.table_count + (0 if self.engine.memtable.is_empty else 1) >= 1)
    @rule(policy=st.sampled_from(["SI", "BT(I)", "random"]))
    def compact_major(self, policy):
        if self.engine.memtable.is_empty and not self.engine.sstables:
            return
        self.engine.compact(MajorCompaction(policy, seed=0))
        assert self.engine.table_count == 1

    @precondition(lambda self: bool(self.engine.sstables))
    @rule()
    def compact_size_tiered(self):
        self.engine.compact(SizeTieredCompaction(min_threshold=2))

    @rule()
    def crash_and_recover(self):
        self.engine = self.engine.simulate_crash_and_recover()

    @rule(start=KEYS, length=st.integers(1, 10))
    def bounded_scan(self, start, length):
        """Bounded scans return exactly the first `length` live keys,
        however many shadowed versions or tombstones precede them."""
        expected = sorted(k for k in self.model if k >= start)[:length]
        result = self.engine.scan(start, length)
        assert [record.key for record in result] == expected
        assert [record.value_size for record in result] == [
            self.model[k] for k in expected
        ]

    @invariant()
    def scan_matches_model(self):
        live = {record.key for record in self.engine.scan(0, 100)}
        assert live == set(self.model)


EngineModel.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestEngineAgainstModel = EngineModel.TestCase


class DurableEngineModel(RuleBasedStateMachine):
    """The same dict-equivalence contract over the disk-backed engine.

    Every mutation goes through the file WAL / sstable / manifest tier
    on an in-memory filesystem, and ``crash_and_reopen`` rebuilds the
    engine from the surviving bytes alone — with per-write WAL syncs a
    reopen may never lose an acknowledged operation.
    """

    @initialize(capacity=st.integers(1, 8), mode=st.sampled_from(["map", "append"]))
    def setup(self, capacity, mode):
        self.fs = MemoryFileSystem()
        self.config = EngineConfig(memtable_capacity=capacity, memtable_mode=mode)
        self.engine = DurableLSMEngine.open(fs=self.fs, config=self.config)
        self.model: dict[int, int] = {}
        self.counter = 0

    @rule(key=KEYS)
    def put(self, key):
        self.counter += 1
        self.engine.put(key, value_size=self.counter)
        self.model[key] = self.counter

    @rule(key=KEYS)
    def delete(self, key):
        self.engine.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        record = self.engine.get(key)
        if key in self.model:
            assert record is not None, f"lost key {key}"
            assert record.value_size == self.model[key], f"stale value for {key}"
        else:
            assert record is None, f"phantom key {key}"

    @rule()
    def flush(self):
        self.engine.flush()

    @precondition(lambda self: bool(self.engine.sstables))
    @rule(policy=st.sampled_from(["SI", "BT(I)"]))
    def compact_major(self, policy):
        self.engine.compact(MajorCompaction(policy, seed=0))
        assert self.engine.table_count == 1

    @precondition(lambda self: bool(self.engine.sstables))
    @rule()
    def compact_size_tiered(self):
        self.engine.compact(SizeTieredCompaction(min_threshold=2))

    @rule()
    def crash_and_reopen(self):
        self.engine = DurableLSMEngine.open(fs=self.fs, config=self.config)

    @rule(start=KEYS, length=st.integers(1, 10))
    def bounded_scan(self, start, length):
        expected = sorted(k for k in self.model if k >= start)[:length]
        result = self.engine.scan(start, length)
        assert [record.key for record in result] == expected
        assert [record.value_size for record in result] == [
            self.model[k] for k in expected
        ]

    @invariant()
    def scan_matches_model(self):
        live = {record.key for record in self.engine.scan(0, 100)}
        assert live == set(self.model)


DurableEngineModel.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestDurableEngineAgainstModel = DurableEngineModel.TestCase
