"""Tests for the file-backed write-ahead log: framing, torn tails, replay."""

import pytest

from repro.errors import CorruptionError
from repro.lsm import LocalFileSystem, MemoryFileSystem, Record, SimulatedDisk
from repro.lsm.format.wal import WAL_NAME, FileWriteAheadLog


def records(n, start_seqno=1):
    return [Record.put(i, start_seqno + i, value_size=10) for i in range(n)]


class TestFileWal:
    def test_append_replay_round_trip(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(5):
            wal.append(record)
        assert len(wal) == 5
        assert not wal.is_empty
        assert wal.replay() == records(5)

    def test_replay_survives_reopen(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(3):
            wal.append(record)
        wal.close()
        assert FileWriteAheadLog(fs).replay() == records(3)

    def test_truncate_empties_the_log(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(3):
            wal.append(record)
        wal.truncate()
        assert wal.is_empty
        assert wal.truncations == 1
        assert fs.size(WAL_NAME) == 0
        wal.append(Record.put(9, 100))
        assert [r.seqno for r in wal.replay()] == [100]

    def test_bills_frame_bytes_to_the_disk(self):
        disk = SimulatedDisk()
        wal = FileWriteAheadLog(MemoryFileSystem(), disk=disk)
        for record in records(4):
            wal.append(record)
        assert disk.stats.bytes_written == wal.bytes_appended_total > 0

    def test_sync_every_batches_syncs(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs, sync_every=3)
        synced = []
        original = wal._file.sync
        wal._file.sync = lambda: synced.append(True) or original()
        for record in records(7):
            wal.append(record)
        assert len(synced) == 2  # after records 3 and 6

    def test_sync_every_must_be_positive(self):
        with pytest.raises(ValueError):
            FileWriteAheadLog(MemoryFileSystem(), sync_every=0)

    def test_local_filesystem_round_trip(self, tmp_path):
        fs = LocalFileSystem(tmp_path)
        wal = FileWriteAheadLog(fs)
        for record in records(3):
            wal.append(record)
        wal.close()
        assert FileWriteAheadLog(LocalFileSystem(tmp_path)).replay() == records(3)


class TestTornTail:
    def tear(self, drop_bytes):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(5):
            wal.append(record)
        wal.close()
        fs.truncate(WAL_NAME, fs.size(WAL_NAME) - drop_bytes)
        return fs

    @pytest.mark.parametrize("drop_bytes", [1, 3, 8, 12])
    def test_partial_final_frame_is_dropped(self, drop_bytes):
        fs = self.tear(drop_bytes)
        wal = FileWriteAheadLog(fs)
        assert wal.replay() == records(4)

    def test_open_physically_repairs_the_tail(self):
        fs = self.tear(2)
        before = fs.size(WAL_NAME)
        wal = FileWriteAheadLog(fs)
        assert fs.size(WAL_NAME) < before  # torn bytes truncated away
        wal.append(Record.put(99, 100))
        assert [r.seqno for r in wal.replay()] == [1, 2, 3, 4, 100]

    def test_corrupt_final_frame_payload_degrades_gracefully(self):
        """A bad CRC on the *final* frame is treated as a torn append:
        the record is dropped, the log survives."""
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(3):
            wal.append(record)
        wal.close()
        fs.flip_bit(WAL_NAME, fs.size(WAL_NAME) - 1)
        assert FileWriteAheadLog(fs).replay() == records(2)

    def test_whole_log_torn_to_one_partial_frame(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        wal.append(Record.put(0, 1))
        wal.close()
        fs.truncate(WAL_NAME, 3)
        assert FileWriteAheadLog(fs).replay() == []


class TestWalCorruption:
    def test_mid_log_bit_flip_is_corruption(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        for record in records(4):
            wal.append(record)
        wal.close()
        fs.flip_bit(WAL_NAME, 12)  # inside the first frame, not the tail
        with pytest.raises(CorruptionError):
            FileWriteAheadLog(fs)

    def test_out_of_order_seqnos_rejected_loudly(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        wal.append(Record.put(0, 5))
        wal.append(Record.put(1, 3))  # seqno goes backwards
        with pytest.raises(CorruptionError):
            wal.replay()

    def test_duplicate_seqnos_rejected_loudly(self):
        fs = MemoryFileSystem()
        wal = FileWriteAheadLog(fs)
        wal.append(Record.put(0, 5))
        wal.append(Record.put(1, 5))
        with pytest.raises(CorruptionError):
            wal.replay()
