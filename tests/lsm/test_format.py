"""Tests for the on-disk formats: checksums, encoding, sstables, manifest."""

import struct

import pytest

from repro.errors import CorruptionError, StorageError
from repro.lsm import MemoryFileSystem, Record, SSTable
from repro.lsm.format import decode_sstable, encode_sstable
from repro.lsm.format.checksum import crc32c, frame_block, read_block
from repro.lsm.format.encoding import (
    decode_key,
    decode_record,
    decode_varint,
    decode_zigzag,
    encode_key,
    encode_record,
    encode_varint,
    encode_zigzag,
)
from repro.lsm.format.manifest import (
    MANIFEST_NAME,
    ManifestState,
    read_manifest,
    write_manifest,
)

try:
    import numpy as np
except ImportError:
    np = None


class TestCrc32c:
    def test_known_vectors(self):
        # The canonical CRC32C check value plus edge cases.
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"") == 0
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_incremental_equals_whole(self):
        data = bytes(range(200))
        assert crc32c(data[100:], crc32c(data[:100])) == crc32c(data)

    def test_frame_round_trip(self):
        payload = b"hello blocks"
        framed = frame_block(payload)
        assert read_block(framed, 0) == (payload, len(framed))

    def test_frame_rejects_flipped_bit(self):
        framed = bytearray(frame_block(b"payload"))
        framed[10] ^= 0x04
        assert read_block(bytes(framed), 0) is None

    def test_frame_rejects_truncation(self):
        framed = frame_block(b"payload")
        assert read_block(framed[:-1], 0) is None
        assert read_block(framed[:5], 0) is None


class TestEncoding:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**35, 2**64])
    def test_varint_round_trip(self, value):
        assert decode_varint(encode_varint(value), 0) == (
            value,
            len(encode_varint(value)),
        )

    def test_varint_rejects_negative(self):
        with pytest.raises(StorageError):
            encode_varint(-1)

    def test_varint_truncation_is_corruption(self):
        with pytest.raises(CorruptionError):
            decode_varint(encode_varint(300)[:1], 0)

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**40, -(2**40)])
    def test_zigzag_round_trip(self, value):
        assert decode_zigzag(encode_zigzag(value), 0)[0] == value

    @pytest.mark.parametrize("key", [0, -17, 2**62, "a-key", "", b"\x00raw", b""])
    def test_key_round_trip(self, key):
        encoded = encode_key(key)
        decoded, end = decode_key(encoded, 0)
        assert decoded == key and type(decoded) is type(key)
        assert end == len(encoded)

    def test_unsupported_key_type_rejected(self):
        with pytest.raises(StorageError):
            encode_key(3.14)
        with pytest.raises(StorageError):
            encode_key(True)  # bool must not sneak through as int

    def test_unknown_key_tag_is_corruption(self):
        with pytest.raises(CorruptionError):
            decode_key(b"\x09abc", 0)

    @pytest.mark.parametrize(
        "record",
        [
            Record.put(5, 1, value_size=100),
            Record.put("key", 2, value=b"payload"),
            Record.delete(-3, 7),
            Record.put(b"bk", 9, value=b""),
        ],
    )
    def test_record_round_trip(self, record):
        encoded = encode_record(record)
        decoded, end = decode_record(encoded, 0)
        assert decoded == record
        assert end == len(encoded)

    def test_unknown_record_flags_are_corruption(self):
        with pytest.raises(CorruptionError):
            decode_record(b"\x80" + encode_key(1), 0)


def table_with_accelerators():
    records = [
        Record.put(1, 5, value=b"hello"),
        Record.delete(7, 9),
        Record.put(100, 2, value_size=64),
    ]
    table = SSTable(3, records, bloom_fp_rate=0.02)
    table.sketch()  # default precision/seed
    table.sketch(precision=10, seed=4)
    return table, records


class TestSSTableRoundTrip:
    def test_byte_identical_round_trip(self):
        table, _records = table_with_accelerators()
        data = encode_sstable(table)
        assert encode_sstable(decode_sstable(data)) == data

    def test_records_survive(self):
        table, records = table_with_accelerators()
        loaded = decode_sstable(encode_sstable(table))
        assert list(loaded.records) == records
        assert loaded.table_id == 3
        assert loaded.get(1).value == b"hello"
        assert loaded.get(7).tombstone

    def test_bloom_adopted_not_rebuilt(self):
        table, _records = table_with_accelerators()
        loaded = decode_sstable(encode_sstable(table))
        # The bloom arrives pre-built from the footer (identical bits,
        # no lazy construction on first use).
        assert "bloom" in loaded.__dict__
        assert loaded.bloom._bits == table.bloom._bits
        assert loaded.bloom.k_hashes == table.bloom.k_hashes
        assert len(loaded.bloom) == len(table.bloom)

    def test_sketches_survive_losslessly(self):
        table, _records = table_with_accelerators()
        loaded = decode_sstable(encode_sstable(table))
        assert set(loaded.cached_sketch_keys) == set(table.cached_sketch_keys)
        for precision, seed in table.cached_sketch_keys:
            original = table.cached_sketch(precision, seed)
            restored = loaded.cached_sketch(precision, seed)
            assert restored.cardinality() == original.cardinality()
            assert restored.to_bytes() == original.to_bytes()

    def test_string_keys_round_trip(self):
        table = SSTable(0, [Record.put("alpha", 1, value=b"x"), Record.put("beta", 2)])
        data = encode_sstable(table)
        loaded = decode_sstable(data)
        assert encode_sstable(loaded) == data
        assert loaded.get("alpha").value == b"x"

    def test_multi_block_table(self):
        # Enough records to span several 4 KiB data blocks.
        records = [Record.put(i, i + 1, value_size=20) for i in range(3000)]
        table = SSTable(1, records)
        data = encode_sstable(table)
        loaded = decode_sstable(data)
        assert encode_sstable(loaded) == data
        assert loaded.entry_count == 3000
        assert loaded.get(1234).seqno == 1235

    @pytest.mark.skipif(np is None, reason="columnar tables require numpy")
    def test_columnar_table_reloads_onto_columns(self):
        table = SSTable.from_columns(
            9, np.arange(0, 3000, 3), np.arange(1000), 100
        )
        data = encode_sstable(table)
        loaded = decode_sstable(data)
        assert encode_sstable(loaded) == data
        assert loaded.columns() is not None  # columnar kernels still apply
        assert loaded.get_batch([30, 31]).tolist() == [10, -1]

    def test_file_round_trip(self, tmp_path):
        table, records = table_with_accelerators()
        path = tmp_path / "000003.sst"
        written = table.to_file(path)
        assert path.stat().st_size == written
        loaded = SSTable.from_file(path)
        assert list(loaded.records) == records


class TestSSTableCorruption:
    def test_every_flipped_bit_detected_or_harmless(self):
        """Flipping any byte either raises CorruptionError or leaves the
        decoded table identical (a flip inside slack bytes cannot happen:
        the format has none — so every flip must raise)."""
        table, _records = table_with_accelerators()
        data = bytearray(encode_sstable(table))
        for offset in range(0, len(data), 13):  # sampled for speed
            data[offset] ^= 0x10
            with pytest.raises(CorruptionError):
                decode_sstable(bytes(data))
            data[offset] ^= 0x10

    def test_truncated_file_rejected(self):
        table, _records = table_with_accelerators()
        data = encode_sstable(table)
        with pytest.raises(CorruptionError):
            decode_sstable(data[:-3])
        with pytest.raises(CorruptionError):
            decode_sstable(data[: len(data) // 2])
        with pytest.raises(CorruptionError):
            decode_sstable(b"")

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptionError):
            decode_sstable(b"\x00" * 64)

    def test_footer_length_beyond_file_rejected(self):
        table, _records = table_with_accelerators()
        data = bytearray(encode_sstable(table))
        struct.pack_into("<I", data, len(data) - 12, 2**31)
        with pytest.raises(CorruptionError):
            decode_sstable(bytes(data))


class TestManifest:
    def test_round_trip(self):
        fs = MemoryFileSystem()
        assert read_manifest(fs) is None
        state = ManifestState(live_tables=(2, 0, 5), next_table_id=6, last_seqno=77)
        write_manifest(fs, state)
        assert read_manifest(fs) == state

    def test_rename_leaves_no_temp_file(self):
        fs = MemoryFileSystem()
        write_manifest(fs, ManifestState())
        assert fs.listdir() == [MANIFEST_NAME]

    def test_rewrite_replaces_atomically(self):
        fs = MemoryFileSystem()
        write_manifest(fs, ManifestState(live_tables=(1,)))
        write_manifest(fs, ManifestState(live_tables=(2, 3), last_seqno=9))
        assert read_manifest(fs).live_tables == (2, 3)

    def test_corrupt_manifest_rejected(self):
        fs = MemoryFileSystem()
        write_manifest(fs, ManifestState(live_tables=(1,)))
        fs.flip_bit(MANIFEST_NAME, fs.size(MANIFEST_NAME) - 1)
        with pytest.raises(CorruptionError):
            read_manifest(fs)
