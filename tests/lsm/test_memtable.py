"""Tests for the two memtable modes."""

import pytest

from repro.errors import ConfigError, StorageError
from repro.lsm import AppendLogMemtable, Record, SortedMapMemtable, make_memtable


class TestFactory:
    def test_modes(self):
        assert isinstance(make_memtable("append", 10), AppendLogMemtable)
        assert isinstance(make_memtable("map", 10), SortedMapMemtable)

    def test_unknown_mode(self):
        with pytest.raises(ConfigError):
            make_memtable("btree", 10)

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            AppendLogMemtable(0)


class TestAppendLog:
    """The paper-mode memtable: capacity counts operations."""

    def test_duplicates_count_against_capacity(self):
        memtable = AppendLogMemtable(3)
        for seqno in range(3):
            memtable.add(Record.put("same", seqno=seqno + 1))
        assert memtable.is_full
        assert len(memtable) == 3

    def test_flush_dedups_keeping_newest(self):
        memtable = AppendLogMemtable(4)
        memtable.add(Record.put("b", seqno=1, value_size=10))
        memtable.add(Record.put("a", seqno=2, value_size=20))
        memtable.add(Record.put("b", seqno=3, value_size=30))
        records = memtable.flush_records()
        assert [record.key for record in records] == ["a", "b"]
        assert records[1].seqno == 3
        assert memtable.is_empty

    def test_flushed_sstable_can_be_smaller_than_capacity(self):
        """§5.1: 'sstables may be smaller and vary in size'."""
        memtable = AppendLogMemtable(100)
        for seqno in range(100):
            memtable.add(Record.put(seqno % 7, seqno=seqno + 1))
        assert len(memtable.flush_records()) == 7

    def test_add_when_full_raises(self):
        memtable = AppendLogMemtable(1)
        memtable.add(Record.put("a", seqno=1))
        with pytest.raises(StorageError):
            memtable.add(Record.put("b", seqno=2))

    def test_get_returns_newest(self):
        memtable = AppendLogMemtable(5)
        memtable.add(Record.put("k", seqno=1, value_size=1))
        memtable.add(Record.put("k", seqno=2, value_size=2))
        assert memtable.get("k").seqno == 2
        assert memtable.get("missing") is None

    def test_pending_records_nondestructive(self):
        memtable = AppendLogMemtable(5)
        memtable.add(Record.put("k", seqno=1))
        assert len(memtable.pending_records()) == 1
        assert len(memtable) == 1


class TestSortedMap:
    """The engine-mode memtable: capacity counts distinct keys."""

    def test_update_overwrites_in_place(self):
        memtable = SortedMapMemtable(2)
        memtable.add(Record.put("k", seqno=1))
        memtable.add(Record.put("k", seqno=2))
        assert len(memtable) == 1
        assert memtable.get("k").seqno == 2

    def test_full_only_on_distinct_keys(self):
        memtable = SortedMapMemtable(2)
        memtable.add(Record.put("a", seqno=1))
        memtable.add(Record.put("a", seqno=2))
        memtable.add(Record.put("b", seqno=3))
        assert memtable.is_full
        with pytest.raises(StorageError):
            memtable.add(Record.put("c", seqno=4))
        # updating an existing key is still allowed when full
        memtable.add(Record.put("a", seqno=5))
        assert memtable.get("a").seqno == 5

    def test_flush_sorted(self):
        memtable = SortedMapMemtable(3)
        for key in ("c", "a", "b"):
            memtable.add(Record.put(key, seqno=1))
        assert [r.key for r in memtable.flush_records()] == ["a", "b", "c"]

    def test_tombstones_stored(self):
        memtable = SortedMapMemtable(2)
        memtable.add(Record.put("k", seqno=1))
        memtable.add(Record.delete("k", seqno=2))
        assert memtable.get("k").tombstone


class TestAddBatch:
    def test_append_mode_bulk_extend(self):
        from repro.lsm import AppendLogMemtable, Record

        memtable = AppendLogMemtable(5)
        memtable.add_batch([Record.put(k, k + 1) for k in range(5)])
        assert len(memtable) == 5
        assert [r.key for r in memtable.pending_records()] == list(range(5))

    def test_append_mode_rejects_oversized_batch_without_partial_fill(self):
        import pytest

        from repro.errors import StorageError
        from repro.lsm import AppendLogMemtable, Record

        memtable = AppendLogMemtable(3)
        memtable.add(Record.put(0, 1))
        with pytest.raises(StorageError):
            memtable.add_batch([Record.put(k, k + 2) for k in range(3)])
        assert len(memtable) == 1  # nothing was appended

    def test_map_mode_batch_matches_loop(self):
        from repro.lsm import Record, SortedMapMemtable

        batched = SortedMapMemtable(10)
        batched.add_batch([Record.put(k % 4, k + 1) for k in range(8)])
        looped = SortedMapMemtable(10)
        for k in range(8):
            looped.add(Record.put(k % 4, k + 1))
        assert batched.pending_records() == looped.pending_records()
