"""Planner + execution-backend properties: any backend, same bytes.

The parallel merge engine rests on two invariants:

* :func:`plan_schedule` recovers exactly the producer/consumer structure
  a schedule's table ids encode, and its waves are the fixpoint of the
  ready-set rule (a step is ready once every dependency has finished);
* every :class:`ExecutionBackend` is a pure function of the schedule —
  serial, thread and process execution produce byte-identical tables,
  cost metrics, simulated durations and propagated sketches for any
  worker count.

Both are checked here over hypothesis-generated random valid schedules.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergeSchedule, MergeStep
from repro.errors import CompactionError
from repro.lsm import Record, SSTable, SimulatedDisk, execute_schedule
from repro.lsm.compaction import make_execution_backend, plan_schedule
from repro.lsm.compaction.executor import resolve_merge_workers


@st.composite
def schedules(draw, min_initial: int = 2, max_initial: int = 8) -> MergeSchedule:
    """Random valid schedules: repeatedly merge 2-3 live tables."""
    n = draw(st.integers(min_initial, max_initial))
    live = list(range(n))
    steps = []
    next_id = n
    while len(live) > 1:
        fan_in = draw(st.integers(2, min(3, len(live))))
        chosen = []
        for _ in range(fan_in):
            chosen.append(live.pop(draw(st.integers(0, len(live) - 1))))
        steps.append(MergeStep(tuple(chosen), next_id))
        live.append(next_id)
        next_id += 1
    schedule = MergeSchedule(n, steps)
    schedule.validate()
    return schedule


def make_tables(n_tables, seed, keys_per_table=12, universe=40, tombstone_rate=0.0):
    rng = random.Random(seed)
    tables = []
    seqno = 0
    for table_id in range(n_tables):
        records = []
        for key in sorted(rng.sample(range(universe), keys_per_table)):
            seqno += 1
            if rng.random() < tombstone_rate:
                records.append(Record.delete(key, seqno))
            else:
                records.append(Record.put(key, seqno, value_size=30))
        tables.append(SSTable(table_id, records))
    return tables


class TestPlannerProperties:
    @given(schedule=schedules())
    @settings(max_examples=50, deadline=None)
    def test_dependencies_are_exactly_the_producers(self, schedule):
        plan = plan_schedule(schedule)
        n = schedule.n_initial
        for index, step in enumerate(plan.steps):
            producers = {
                table_id - n for table_id in step.inputs if table_id >= n
            }
            assert set(plan.dependencies[index]) == producers
            assert all(dep < index for dep in plan.dependencies[index])
        # dependents is the exact inverse edge set
        edges = {
            (dep, index)
            for index, deps in enumerate(plan.dependencies)
            for dep in deps
        }
        inverse = {
            (index, dependent)
            for index, dependents in enumerate(plan.dependents)
            for dependent in dependents
        }
        assert edges == inverse

    @given(schedule=schedules())
    @settings(max_examples=50, deadline=None)
    def test_waves_are_the_ready_set_fixpoint(self, schedule):
        plan = plan_schedule(schedule)
        waves = plan.topological_waves()
        done: set[int] = set()
        remaining = set(range(plan.n_steps))
        assert set(waves[0]) == set(plan.ready_steps())
        for wave in waves:
            ready = {
                index
                for index in remaining
                if all(dep in done for dep in plan.dependencies[index])
            }
            assert set(wave) == ready
            done |= ready
            remaining -= ready
        assert not remaining
        assert plan.critical_path_steps == len(waves)

    def test_corrupt_schedule_rejected(self):
        # MergeSchedule.__init__ validates, so hand-build a corrupt one:
        # step 0 reads table 3, which only step 1 (later) produces.
        schedule = object.__new__(MergeSchedule)
        schedule.n_initial = 2
        schedule.steps = (MergeStep((0, 3), 2), MergeStep((1, 2), 3))
        with pytest.raises(CompactionError, match="no earlier step"):
            plan_schedule(schedule)


class TestBackendEquivalence:
    @staticmethod
    def _run(tables, schedule, executor, workers=None):
        return execute_schedule(
            tables,
            schedule,
            SimulatedDisk(),
            next_table_id=100,
            lanes=3,
            executor=executor,
            workers=workers,
        )

    @staticmethod
    def _assert_equal(reference, candidate):
        assert candidate.output_table.records == reference.output_table.records
        assert candidate.output_table.table_id == reference.output_table.table_id
        assert candidate.n_merges == reference.n_merges
        assert candidate.cost_actual_entries == reference.cost_actual_entries
        assert (
            candidate.cost_simplified_entries
            == reference.cost_simplified_entries
        )
        assert candidate.bytes_read == reference.bytes_read
        assert candidate.bytes_written == reference.bytes_written
        assert candidate.io_seconds == reference.io_seconds
        assert candidate.simulated_seconds == reference.simulated_seconds
        ref_sketch = reference.output_table.cached_sketch()
        out_sketch = candidate.output_table.cached_sketch()
        if ref_sketch is None:
            assert out_sketch is None
        else:
            assert out_sketch._registers == ref_sketch._registers

    @given(
        schedule=schedules(),
        seed=st.integers(0, 10_000),
        with_tombstones=st.booleans(),
        workers=st.sampled_from([1, 2, 5]),
    )
    @settings(max_examples=25, deadline=None)
    def test_thread_matches_serial(
        self, schedule, seed, with_tombstones, workers
    ):
        tables = make_tables(
            schedule.n_initial,
            seed=seed,
            tombstone_rate=0.3 if with_tombstones else 0.0,
        )
        for table in tables:
            table.sketch()
        serial = self._run(tables, schedule, "serial")
        threaded = self._run(tables, schedule, "thread", workers=workers)
        self._assert_equal(serial, threaded)

    def test_process_matches_serial(self):
        pytest.importorskip("numpy")
        schedule = MergeSchedule(
            4, [MergeStep((0, 1), 4), MergeStep((2, 3), 5), MergeStep((4, 5), 6)]
        )
        tables = make_tables(4, seed=13, tombstone_rate=0.25)
        serial = self._run(tables, schedule, "serial")
        processed = self._run(tables, schedule, "process", workers=2)
        self._assert_equal(serial, processed)

    def test_single_table_schedule_runs_on_every_backend(self):
        schedule = MergeSchedule(1, [])
        tables = make_tables(1, seed=3)
        for executor in ("serial", "thread"):
            result = self._run(tables, schedule, executor)
            assert result.n_merges == 0
            assert result.output_table is tables[0]


class TestBackendErrors:
    def test_unknown_executor(self):
        with pytest.raises(CompactionError, match="unknown merge executor"):
            make_execution_backend("gpu")

    def test_negative_workers(self):
        with pytest.raises(CompactionError, match="must be >= 0"):
            resolve_merge_workers(-1)

    def test_auto_workers_resolve_to_cpu_count(self):
        assert resolve_merge_workers(None) >= 1
        assert resolve_merge_workers(0) == resolve_merge_workers(None)
        assert resolve_merge_workers(3) == 3

    def test_serial_backend_defaults_to_one_worker(self):
        assert make_execution_backend("serial").workers == 1
        assert make_execution_backend("thread", 4).workers == 4

    def test_process_rejects_heap_kernel(self):
        pytest.importorskip("numpy")
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        tables = make_tables(2, seed=5)
        with pytest.raises(CompactionError, match="heap"):
            execute_schedule(
                tables,
                schedule,
                SimulatedDisk(),
                next_table_id=100,
                merge_kernel="heap",
                executor="process",
            )

    def test_process_rejects_non_columnar_tables(self):
        pytest.importorskip("numpy")
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        tables = [
            SSTable(0, [Record.put("a", 1, value_size=10)]),
            SSTable(1, [Record.put("b", 2, value_size=10)]),
        ]
        with pytest.raises(CompactionError, match="column view"):
            execute_schedule(
                tables,
                schedule,
                SimulatedDisk(),
                next_table_id=100,
                executor="process",
            )
