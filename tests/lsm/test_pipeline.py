"""The concurrent write pipeline vs the serial engine, differentially.

The contract (docs/concurrency.md, part 2): after a drain, the
pipelined engine's sstables, disk accounting and read counters are
byte-identical to the serial engine for any worker count and queue
bound.  Mid-flight reads are value-identical (a frozen record is served
from memory instead of disk), which these tests check separately.
"""

import pytest

from repro.errors import ConfigError, StorageError
from repro.lsm import (
    CompactionController,
    EngineConfig,
    FlushPipeline,
    LSMEngine,
    MajorCompaction,
    PipelinedLSMEngine,
    SizeTieredCompaction,
    resolve_flush_workers,
)


def _workload(n=600, keyspace=97):
    """A deterministic put/delete mix with repeated keys."""
    ops = []
    for i in range(n):
        key = (i * 37) % keyspace
        if i % 11 == 3:
            ops.append(("delete", key, 0))
        else:
            ops.append(("put", key, 40 + (i % 5)))
    return ops


def _apply(engine, ops):
    for op, key, size in ops:
        if op == "put":
            engine.put(key, value_size=size)
        else:
            engine.delete(key)


def _serial_engine(mode="append", capacity=32):
    return LSMEngine(
        EngineConfig(memtable_capacity=capacity, memtable_mode=mode)
    )


def _pipelined_engine(mode="append", capacity=32, workers=2, max_imm=2):
    return PipelinedLSMEngine(
        EngineConfig(memtable_capacity=capacity, memtable_mode=mode),
        max_immutable_memtables=max_imm,
        flush_workers=workers,
    )


def _assert_tables_identical(serial, pipelined):
    assert [t.table_id for t in serial.sstables] == [
        t.table_id for t in pipelined.sstables
    ]
    for a, b in zip(serial.sstables, pipelined.sstables):
        assert a.records == b.records
        assert a.size_bytes == b.size_bytes


class TestDifferential:
    @pytest.mark.parametrize("mode", ["append", "map"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("max_imm", [1, 2, 5])
    def test_byte_identical_after_drain(self, mode, workers, max_imm):
        ops = _workload()
        serial = _serial_engine(mode)
        _apply(serial, ops)
        serial.flush()
        with _pipelined_engine(mode, workers=workers, max_imm=max_imm) as piped:
            _apply(piped, ops)
            piped.flush()
            _assert_tables_identical(serial, piped)
            assert serial.disk.stats == piped.disk.stats
            assert serial.flush_count == piped.flush_count

    @pytest.mark.parametrize("workers", [1, 4])
    def test_read_counters_identical_after_drain(self, workers):
        ops = _workload()
        serial = _serial_engine()
        _apply(serial, ops)
        serial.flush()
        with _pipelined_engine(workers=workers) as piped:
            _apply(piped, ops)
            piped.flush()
            for key in range(0, 97, 5):
                assert serial.get(key) == piped.get(key)
                assert serial.scan(key, 7) == piped.scan(key, 7)
            assert serial.read_stats == piped.read_stats
            assert serial.disk.stats == piped.disk.stats

    def test_compact_serial_identical(self):
        ops = _workload()
        serial = _serial_engine()
        _apply(serial, ops)
        serial.flush()
        serial_result = serial.compact(MajorCompaction("balance_tree_input"))
        with _pipelined_engine(workers=3) as piped:
            _apply(piped, ops)
            piped.flush()
            piped_result = piped.compact(MajorCompaction("balance_tree_input"))
            _assert_tables_identical(serial, piped)
            assert serial.disk.stats == piped.disk.stats
            assert (
                serial_result.cost_actual_entries
                == piped_result.cost_actual_entries
            )


class TestMidFlightReads:
    def test_frozen_records_visible_before_flush(self):
        with _pipelined_engine(capacity=8, max_imm=8) as engine:
            engine.pause_flushes()
            for i in range(40):
                engine.put(i, value_size=50)
            assert engine.immutable_count > 0
            # Nothing flushed yet, but every acknowledged write reads back.
            for i in range(40):
                record = engine.get(i)
                assert record is not None and record.value_size == 50
            assert engine.scan(0, 40) == [engine.get(i) for i in range(40)]
            engine.resume_flushes()
            engine.drain()
            for i in range(40):
                assert engine.get(i).value_size == 50

    def test_newest_version_wins_across_active_and_immutable(self):
        with _pipelined_engine(capacity=4, max_imm=8) as engine:
            engine.pause_flushes()
            for version in (1, 2, 3):
                for key in range(4):
                    engine.put(key, value_size=version)
            for key in range(4):
                assert engine.get(key).value_size == 3
            engine.resume_flushes()

    def test_wal_survivors_cover_frozen_queue(self):
        config = EngineConfig(memtable_capacity=4, use_wal=True)
        with PipelinedLSMEngine(
            config, max_immutable_memtables=8, flush_workers=2
        ) as engine:
            engine.pause_flushes()
            for i in range(14):
                engine.put(i, value_size=60)
            recovered = engine.simulate_crash_and_recover()
            for i in range(14):
                assert recovered.get(i) is not None, f"lost acked key {i}"
            engine.resume_flushes()


class TestBackpressure:
    def test_stalls_counted_when_queue_full(self):
        with _pipelined_engine(capacity=4, workers=1, max_imm=1) as engine:
            for i in range(200):
                engine.put(i, value_size=50)
            engine.flush()
            metrics = engine.pipeline_metrics()
            assert metrics.write_stall_count > 0
            assert metrics.write_stall_seconds >= 0.0
            assert metrics.freezes == metrics.flushes
            # Backpressure never dropped a write.
            for i in range(200):
                assert engine.get(i) is not None

    def test_metrics_overlap_bounded(self):
        with _pipelined_engine(capacity=8, workers=2) as engine:
            for i in range(300):
                engine.put(i % 50, value_size=40)
            engine.flush()
            metrics = engine.pipeline_metrics()
            assert 0.0 <= metrics.flush_overlap_fraction <= 1.0
            assert metrics.ingest_wall_seconds > 0.0


class TestBackgroundCompaction:
    def test_compact_async_value_equivalent(self):
        ops = _workload(400)
        serial = _serial_engine()
        _apply(serial, ops)
        serial.flush()
        serial.compact(SizeTieredCompaction())
        with _pipelined_engine(workers=2) as piped:
            _apply(piped, ops)
            piped.flush()
            piped.compact_async(SizeTieredCompaction())
            piped.wait_for_compaction()
            results = piped.take_compaction_results()
            assert len(results) == 1
            serial_records = sorted(
                (r.key, r.seqno) for t in serial.sstables for r in t.records
            )
            piped_records = sorted(
                (r.key, r.seqno) for t in piped.sstables for r in t.records
            )
            assert serial_records == piped_records
            assert serial.disk.stats == piped.disk.stats

    def test_compact_async_empty_raises(self):
        with _pipelined_engine() as engine:
            with pytest.raises(StorageError):
                engine.compact_async()

    def test_controller_background_mode(self):
        with _pipelined_engine(capacity=8, workers=2) as engine:
            controller = CompactionController(
                engine, table_threshold=4, background=True
            )
            for i in range(400):
                engine.put(i % 60, value_size=45)
                controller.maybe_compact()
            engine.flush()
            controller.finish()
            assert controller.stats.compactions >= 1
            assert len(controller.history) == controller.stats.compactions
            for i in range(60):
                assert engine.get(i) is not None

    def test_controller_background_requires_async_engine(self):
        serial = _serial_engine()
        with pytest.raises(ConfigError):
            CompactionController(serial, background=True)


class TestFlushPipelineCore:
    def test_publish_strictly_in_submit_order(self):
        import time

        published = []

        def build(item):
            # Later items build faster; publish order must not care.
            time.sleep(0.002 * (5 - item))
            return item * 10

        with FlushPipeline(
            build=build,
            publish=lambda item, result: published.append((item, result)),
            max_pending=8,
            workers=4,
        ) as pipe:
            for i in range(5):
                pipe.submit(i)
            pipe.drain()
        assert published == [(i, i * 10) for i in range(5)]

    def test_build_error_surfaces_to_producer(self):
        def build(item):
            if item == 3:
                raise ValueError("boom at 3")
            return item

        pipe = FlushPipeline(
            build=build, publish=lambda i, r: None, max_pending=2, workers=2
        )
        with pytest.raises(ValueError, match="boom at 3"):
            for i in range(50):
                pipe.submit(i)
            pipe.drain()
        pipe.close(raise_error=False)

    def test_submit_after_close_raises(self):
        pipe = FlushPipeline(
            build=lambda i: i, publish=lambda i, r: None, workers=1
        )
        pipe.close()
        with pytest.raises(StorageError):
            pipe.submit(1)

    def test_engine_close_joins_workers(self):
        engine = _pipelined_engine(capacity=4)
        engine.put(1, value_size=10)
        engine.flush()
        engine.close()
        # The next freeze has no pipeline to submit to.
        with pytest.raises(StorageError):
            for i in range(10):
                engine.put(i, value_size=10)

    def test_unorderable_keys_error_propagates(self):
        with pytest.raises(TypeError):
            with _pipelined_engine(capacity=2, mode="map") as engine:
                engine.put(1, value_size=10)
                engine.put("a", value_size=10)  # sort fails in the worker
                engine.put(2, value_size=10)
                engine.flush()


class TestValidation:
    def test_resolve_flush_workers(self):
        assert resolve_flush_workers(3) == 3
        assert resolve_flush_workers(None) >= 1
        assert resolve_flush_workers(0) >= 1
        with pytest.raises(ConfigError):
            resolve_flush_workers(-1)

    def test_bad_queue_bound_rejected(self):
        with pytest.raises(ConfigError):
            PipelinedLSMEngine(EngineConfig(), max_immutable_memtables=0)
        with pytest.raises(ConfigError):
            FlushPipeline(
                build=lambda i: i, publish=lambda i, r: None, max_pending=0
            )
