"""Stateful property test: the immutable-memtable queue invariants.

Hypothesis drives put/delete/get/scan/freeze/pause/resume/drain/crash
sequences against the pipelined engine and a model dictionary.  The
invariants under test:

* **freeze order is preserved** — published sstables carry strictly
  increasing table ids, and freezes never outrun flushes by more than
  the submitted backlog;
* **reads see newest-first** across active memtable → immutable queue →
  sstables: the engine answers exactly like the dict model at every
  step, including while frozen memtables sit unflushed in the queue;
* **backpressure never drops an acknowledged write** — whatever
  stalling happened, every acknowledged put/delete is readable (and
  recoverable through the WAL crash simulation).

The flush workers stay pausable, so the machine deterministically holds
memtables in the queue; the queue bound is large (64) because a paused
pipeline can never free a slot — submitting past the bound while paused
would stall the test forever (that is the documented backpressure
semantics, not a bug).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.lsm import EngineConfig, PipelinedLSMEngine

KEYS = st.integers(0, 24)


class PipelinedEngineModel(RuleBasedStateMachine):
    @initialize(
        capacity=st.integers(1, 8),
        mode=st.sampled_from(["map", "append"]),
        workers=st.integers(1, 3),
    )
    def setup(self, capacity, mode, workers):
        self.engine = PipelinedLSMEngine(
            EngineConfig(
                memtable_capacity=capacity, memtable_mode=mode, use_wal=True
            ),
            max_immutable_memtables=64,  # see module docstring
            flush_workers=workers,
        )
        self.model: dict[int, int] = {}
        self.counter = 0
        self.paused = False

    def teardown(self):
        self.engine.resume_flushes()
        self.engine.close(raise_error=False)

    @rule(key=KEYS)
    def put(self, key):
        self.counter += 1
        self.engine.put(key, value_size=self.counter)
        self.model[key] = self.counter

    @rule(key=KEYS)
    def delete(self, key):
        self.engine.delete(key)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        record = self.engine.get(key)
        if key in self.model:
            assert record is not None, f"lost key {key}"
            assert record.value_size == self.model[key], f"stale value {key}"
        else:
            assert record is None, f"phantom key {key}"

    @rule()
    def pause(self):
        self.engine.pause_flushes()
        self.paused = True

    @rule()
    def resume(self):
        self.engine.resume_flushes()
        self.paused = False

    @rule()
    def drain(self):
        self.engine.drain()  # resumes and empties the queue
        self.paused = False
        assert self.engine.immutable_count == 0

    @rule()
    def flush(self):
        self.engine.flush()
        self.paused = False
        assert self.engine.immutable_count == 0
        assert self.engine.memtable.is_empty

    @precondition(lambda self: not self.paused)
    @rule()
    def crash_and_recover(self):
        recovered = self.engine.simulate_crash_and_recover()
        for key in range(25):
            record = recovered.get(key)
            if key in self.model:
                assert record is not None, f"recovery lost key {key}"
                assert record.value_size == self.model[key]
            else:
                assert record is None, f"recovery phantom key {key}"

    @rule(start=KEYS, length=st.integers(1, 10))
    def bounded_scan(self, start, length):
        expected = sorted(k for k in self.model if k >= start)[:length]
        result = self.engine.scan(start, length)
        assert [record.key for record in result] == expected
        assert [record.value_size for record in result] == [
            self.model[k] for k in expected
        ]

    @invariant()
    def table_ids_follow_freeze_order(self):
        ids = [table.table_id for table in self.engine.sstables]
        flushed = [i for i in ids if i < 10_000_000]  # compaction id space
        assert flushed == sorted(flushed), f"publish order broke: {ids}"

    @invariant()
    def queue_accounting_consistent(self):
        metrics = self.engine.pipeline_metrics()
        assert metrics.flushes <= metrics.freezes
        # The queue holds exactly the submitted-but-unpublished freezes;
        # reading immutable_count after the snapshot can only see fewer
        # (workers publish concurrently), never more.
        assert metrics.freezes - metrics.flushes >= self.engine.immutable_count

    @invariant()
    def scan_matches_model(self):
        live = {record.key for record in self.engine.scan(0, 100)}
        assert live == set(self.model)


PipelinedEngineModel.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestPipelinedEngineAgainstModel = PipelinedEngineModel.TestCase
