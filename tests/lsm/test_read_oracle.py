"""Read/scan oracle: a mixed op stream against the engine vs a dict.

Example-based complement to the stateful machine: one long seeded
YCSB-style stream drives the engine while a plain dict tracks the live
truth, and every get/scan is checked for equivalence — including
tombstone shadowing across tables, after a major compaction, and after
a crash + WAL recovery.
"""

import random

import pytest

from repro.lsm import EngineConfig, LSMEngine, MajorCompaction

KEYSPACE = 60


def check_all_reads(engine: LSMEngine, model: dict) -> None:
    """Every key's get and a spread of scans must match the model."""
    for key in range(KEYSPACE):
        record = engine.get(key)
        if key in model:
            assert record is not None, f"lost key {key}"
            assert record.value_size == model[key], f"stale value for {key}"
        else:
            assert record is None, f"phantom key {key}"
    for start in (0, 1, KEYSPACE // 3, KEYSPACE - 5):
        for length in (1, 3, 17, 100):
            expected = sorted(k for k in model if k >= start)[:length]
            got = engine.scan(start, length)
            assert [r.key for r in got] == expected, (start, length)
            assert [r.value_size for r in got] == [model[k] for k in expected]


@pytest.mark.parametrize("mode", ("map", "append"))
@pytest.mark.parametrize("seed", (1, 2))
def test_mixed_stream_oracle(mode, seed):
    rng = random.Random(seed)
    engine = LSMEngine(EngineConfig(memtable_capacity=7, memtable_mode=mode))
    model: dict[int, int] = {}
    for step in range(1, 401):
        key = rng.randrange(KEYSPACE)
        roll = rng.random()
        if roll < 0.55:
            engine.put(key, value_size=step)
            model[key] = step
        elif roll < 0.80:
            engine.delete(key)
            model.pop(key, None)
        elif roll < 0.90:
            record = engine.get(key)
            assert (record is not None) == (key in model)
        else:
            length = rng.randint(1, 10)
            expected = sorted(k for k in model if k >= key)[:length]
            assert [r.key for r in engine.scan(key, length)] == expected
        if step % 100 == 0:
            check_all_reads(engine, model)

    # Tombstones now shadow versions across many tables.
    engine.flush()
    check_all_reads(engine, model)

    engine.compact(MajorCompaction("BT(I)", seed=0))
    assert engine.table_count == 1
    check_all_reads(engine, model)

    # More churn on top of the compacted table, then crash + recover.
    for step in range(401, 481):
        key = rng.randrange(KEYSPACE)
        if rng.random() < 0.6:
            engine.put(key, value_size=step)
            model[key] = step
        else:
            engine.delete(key)
            model.pop(key, None)
    engine = engine.simulate_crash_and_recover()
    check_all_reads(engine, model)
