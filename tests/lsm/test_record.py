"""Tests for Record construction and sizing."""

from repro.lsm import ENTRY_OVERHEAD_BYTES, Record


class TestConstruction:
    def test_put(self):
        record = Record.put("k", seqno=3, value_size=100)
        assert not record.tombstone
        assert record.value_size == 100

    def test_put_with_payload(self):
        record = Record.put("k", seqno=1, value=b"hello")
        assert record.value_size == 5
        assert record.value == b"hello"

    def test_value_size_follows_payload(self):
        record = Record(key="k", seqno=1, value_size=999, value=b"xy")
        assert record.value_size == 2

    def test_delete(self):
        record = Record.delete("k", seqno=9)
        assert record.tombstone
        assert record.value_size == 0


class TestSizing:
    def test_int_key_size(self):
        record = Record.put(5, seqno=1, value_size=100)
        assert record.size_bytes == ENTRY_OVERHEAD_BYTES + 100

    def test_string_key_size(self):
        record = Record.put("user42", seqno=1, value_size=100)
        assert record.size_bytes == ENTRY_OVERHEAD_BYTES + 6 + 100

    def test_tombstone_size(self):
        assert Record.delete(1, seqno=1).size_bytes == ENTRY_OVERHEAD_BYTES


class TestOrdering:
    def test_supersedes(self):
        old = Record.put("k", seqno=1)
        new = Record.put("k", seqno=2)
        assert new.supersedes(old)
        assert not old.supersedes(new)
        assert not new.supersedes(Record.put("other", seqno=1))
