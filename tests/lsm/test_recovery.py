"""Crash-recovery tests: WAL replay restores exactly the pre-crash state."""

import dataclasses

import pytest

from repro.errors import CorruptionError
from repro.lsm import EngineConfig, LSMEngine, MajorCompaction, Record


def engine_with(capacity=10, use_wal=True, mode="map"):
    return LSMEngine(
        EngineConfig(memtable_capacity=capacity, use_wal=use_wal, memtable_mode=mode)
    )


class TestWalRecovery:
    def test_unflushed_writes_survive(self):
        engine = engine_with()
        engine.put("durable", value=b"on-disk")
        engine.flush()
        engine.put("volatile", value=b"in-memtable")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("durable").value == b"on-disk"
        assert recovered.get("volatile").value == b"in-memtable"

    def test_without_wal_unflushed_writes_are_lost(self):
        engine = engine_with(use_wal=False)
        engine.put("durable")
        engine.flush()
        engine.put("volatile")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("durable") is not None
        assert recovered.get("volatile") is None

    def test_tombstones_survive_recovery(self):
        engine = engine_with()
        engine.put("k", value=b"v")
        engine.flush()
        engine.delete("k")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("k") is None

    def test_seqno_continuity(self):
        """Post-recovery writes must supersede every pre-crash write."""
        engine = engine_with()
        engine.put("k", value=b"before")
        recovered = engine.simulate_crash_and_recover()
        recovered.put("k", value=b"after")
        assert recovered.get("k").value == b"after"
        recovered.flush()
        assert recovered.get("k").value == b"after"

    def test_double_crash_is_safe(self):
        """Replayed records re-enter the WAL, protecting a second crash."""
        engine = engine_with()
        engine.put("k", value=b"v")
        once = engine.simulate_crash_and_recover()
        twice = once.simulate_crash_and_recover()
        assert twice.get("k").value == b"v"

    def test_state_identical_after_recovery(self):
        engine = engine_with(capacity=5)
        for i in range(23):
            engine.put(i, value_size=10)
        engine.delete(7)
        expected = {i: engine.get(i) is not None for i in range(23)}
        recovered = engine.simulate_crash_and_recover()
        actual = {i: recovered.get(i) is not None for i in range(23)}
        assert actual == expected
        assert not expected[7]

    def test_recovery_after_compaction(self):
        engine = engine_with(capacity=4)
        for i in range(12):
            engine.put(i)
        engine.compact(MajorCompaction("SI"))
        engine.put("fresh")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.table_count == 1
        assert recovered.get("fresh") is not None
        assert recovered.get(3) is not None

    def test_append_mode_recovery(self):
        engine = engine_with(capacity=6, mode="append")
        for i in range(4):
            engine.put("hot", value_size=i + 1)
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("hot").value_size == 4


class TestRecoveryAccounting:
    """Recovery re-reads durable state; it must never re-bill it."""

    def test_io_stats_pinned_across_crash_and_recover(self):
        """Regression: replaying survivors through ``wal.append`` used to
        re-charge the shared SimulatedDisk for bytes that were already
        durable, inflating write totals on every crash/recover cycle."""
        engine = engine_with(capacity=10)
        for i in range(7):
            engine.put(i, value_size=50)
        before = dataclasses.asdict(engine.disk.stats)
        recovered = engine.simulate_crash_and_recover()
        assert dataclasses.asdict(recovered.disk.stats) == before

    def test_bytes_appended_total_not_inflated(self):
        engine = engine_with(capacity=10)
        for i in range(5):
            engine.put(i, value_size=50)
        appended = engine.wal.bytes_appended_total
        recovered = engine.simulate_crash_and_recover()
        # The recovered log holds the same records but bills nothing new.
        assert len(recovered.wal) == len(engine.wal)
        assert recovered.wal.bytes_appended_total == 0
        assert engine.wal.bytes_appended_total == appended

    def test_repeated_recovery_is_io_free(self):
        engine = engine_with(capacity=10)
        engine.put("k", value_size=10)
        for _ in range(5):
            engine = engine.simulate_crash_and_recover()
        assert engine.wal.bytes_appended_total == 0
        assert engine.get("k") is not None


class TestMidReplayFlush:
    """Recovery under a smaller memtable flushes mid-replay; the records
    not yet replayed must remain recoverable through a second crash."""

    def shrunk(self):
        return EngineConfig(memtable_capacity=2, memtable_mode="map")

    def test_recovery_with_smaller_capacity_flushes_mid_replay(self):
        engine = engine_with(capacity=10)
        for i in range(7):
            engine.put(i, value_size=i + 1)
        recovered = engine.simulate_crash_and_recover(config=self.shrunk())
        assert recovered.flush_count >= 1  # replay had to spill
        for i in range(7):
            assert recovered.get(i).value_size == i + 1

    def test_second_crash_mid_replay_loses_nothing(self):
        """Regression: the mid-replay flush truncates the WAL; survivors
        not yet replayed used to exist nowhere, so a second crash
        silently dropped them."""
        engine = engine_with(capacity=10)
        for i in range(7):
            engine.put(i, value_size=i + 1)
        once = engine.simulate_crash_and_recover(config=self.shrunk())
        twice = once.simulate_crash_and_recover(config=self.shrunk())
        for i in range(7):
            record = twice.get(i)
            assert record is not None, f"second crash dropped key {i}"
            assert record.value_size == i + 1

    def test_wal_matches_memtable_after_mid_replay_flush(self):
        engine = engine_with(capacity=10)
        for i in range(7):
            engine.put(i)
        recovered = engine.simulate_crash_and_recover(config=self.shrunk())
        replayed = recovered.wal.replay()
        pending = list(recovered.memtable.pending_records())
        assert replayed == pending


class TestWalReplayValidation:
    def test_out_of_order_seqnos_rejected(self):
        engine = engine_with()
        engine.wal.append(Record.put(0, 5))
        engine.wal.append(Record.put(1, 3))
        with pytest.raises(CorruptionError):
            engine.wal.replay()

    def test_duplicate_seqnos_rejected(self):
        engine = engine_with()
        engine.wal.append(Record.put(0, 5))
        engine.wal.append(Record.put(1, 5))
        with pytest.raises(CorruptionError):
            engine.wal.replay()
