"""Crash-recovery tests: WAL replay restores exactly the pre-crash state."""

from repro.lsm import EngineConfig, LSMEngine, MajorCompaction


def engine_with(capacity=10, use_wal=True, mode="map"):
    return LSMEngine(
        EngineConfig(memtable_capacity=capacity, use_wal=use_wal, memtable_mode=mode)
    )


class TestWalRecovery:
    def test_unflushed_writes_survive(self):
        engine = engine_with()
        engine.put("durable", value=b"on-disk")
        engine.flush()
        engine.put("volatile", value=b"in-memtable")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("durable").value == b"on-disk"
        assert recovered.get("volatile").value == b"in-memtable"

    def test_without_wal_unflushed_writes_are_lost(self):
        engine = engine_with(use_wal=False)
        engine.put("durable")
        engine.flush()
        engine.put("volatile")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("durable") is not None
        assert recovered.get("volatile") is None

    def test_tombstones_survive_recovery(self):
        engine = engine_with()
        engine.put("k", value=b"v")
        engine.flush()
        engine.delete("k")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("k") is None

    def test_seqno_continuity(self):
        """Post-recovery writes must supersede every pre-crash write."""
        engine = engine_with()
        engine.put("k", value=b"before")
        recovered = engine.simulate_crash_and_recover()
        recovered.put("k", value=b"after")
        assert recovered.get("k").value == b"after"
        recovered.flush()
        assert recovered.get("k").value == b"after"

    def test_double_crash_is_safe(self):
        """Replayed records re-enter the WAL, protecting a second crash."""
        engine = engine_with()
        engine.put("k", value=b"v")
        once = engine.simulate_crash_and_recover()
        twice = once.simulate_crash_and_recover()
        assert twice.get("k").value == b"v"

    def test_state_identical_after_recovery(self):
        engine = engine_with(capacity=5)
        for i in range(23):
            engine.put(i, value_size=10)
        engine.delete(7)
        expected = {i: engine.get(i) is not None for i in range(23)}
        recovered = engine.simulate_crash_and_recover()
        actual = {i: recovered.get(i) is not None for i in range(23)}
        assert actual == expected
        assert not expected[7]

    def test_recovery_after_compaction(self):
        engine = engine_with(capacity=4)
        for i in range(12):
            engine.put(i)
        engine.compact(MajorCompaction("SI"))
        engine.put("fresh")
        recovered = engine.simulate_crash_and_recover()
        assert recovered.table_count == 1
        assert recovered.get("fresh") is not None
        assert recovered.get(3) is not None

    def test_append_mode_recovery(self):
        engine = engine_with(capacity=6, mode="append")
        for i in range(4):
            engine.put("hot", value_size=i + 1)
        recovered = engine.simulate_crash_and_recover()
        assert recovered.get("hot").value_size == 4
