"""Sketch lifecycle across the lsm layer: build once, never re-hash.

The §1 deployment loop runs compactions in the background over long
table lifetimes.  Three pieces make the HLL estimator's cost amortize
across that loop:

* :meth:`SSTable.sketch` builds lazily and caches per (precision, seed),
* the executor propagates input sketches losslessly onto each merge
  output (skipped when tombstone GC could drop keys),
* :class:`MajorCompaction` seeds its per-run estimator from those
  caches, so a key is hashed at most once over a table's lifetime.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MergeSchedule, MergeStep
from repro.hll import HyperLogLog
from repro.lsm import MajorCompaction, Record, SSTable, SimulatedDisk, execute_schedule
from repro.lsm.compaction.controller import CompactionController
from repro.lsm.engine import EngineConfig, LSMEngine
from repro.ycsb.operations import Operation, OperationType


def make_tables(n_tables=6, keys_per_table=40, universe=200, seed=0, tombstone_rate=0.0):
    rng = random.Random(seed)
    tables = []
    seqno = 0
    for table_id in range(n_tables):
        records = []
        for key in sorted(rng.sample(range(universe), keys_per_table)):
            seqno += 1
            if rng.random() < tombstone_rate:
                records.append(Record.delete(key, seqno))
            else:
                records.append(Record.put(key, seqno, value_size=50))
        tables.append(SSTable(table_id, records))
    return tables


class TestSSTableSketch:
    def test_lazy_build_and_cache(self):
        table = make_tables(1)[0]
        assert table.cached_sketch() is None
        sketch = table.sketch()
        assert table.cached_sketch() is sketch
        assert table.sketch() is sketch  # no rebuild

    def test_sketch_matches_key_set(self):
        table = make_tables(1)[0]
        direct = HyperLogLog.of(table.key_set)
        assert table.sketch()._registers == direct._registers

    def test_cache_keyed_by_parameters(self):
        table = make_tables(1)[0]
        low = table.sketch(precision=8)
        high = table.sketch(precision=12)
        assert low is not high
        assert set(table.cached_sketch_keys) == {(8, 0), (12, 0)}

    def test_adopt_sketch(self):
        table = make_tables(1)[0]
        sketch = HyperLogLog.of(table.key_set, precision=10, seed=7)
        table.adopt_sketch(sketch)
        assert table.cached_sketch(10, 7) is sketch

    def test_has_tombstones(self):
        clean = make_tables(1, seed=1)[0]
        dirty = make_tables(1, seed=2, tombstone_rate=0.5)[0]
        assert not clean.has_tombstones
        assert dirty.has_tombstones


class TestExecutorPropagation:
    def test_output_inherits_union_sketch(self):
        tables = make_tables(4, seed=3)
        for table in tables:
            table.sketch()
        schedule = MergeSchedule(
            4, [MergeStep((0, 1), 4), MergeStep((2, 3), 5), MergeStep((4, 5), 6)]
        )
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10, drop_tombstones=False
        )
        output = result.output_table
        inherited = output.cached_sketch()
        assert inherited is not None
        assert inherited._registers == HyperLogLog.of(output.key_set)._registers

    def test_propagation_lossless_for_every_common_parameterization(self):
        # The single-pass intersection must adopt one lossless union
        # sketch per (precision, seed) cached on all inputs.
        tables = make_tables(3, seed=8)
        for table in tables:
            table.sketch(precision=9)
            table.sketch(precision=11, seed=3)
        schedule = MergeSchedule(3, [MergeStep((0, 1), 3), MergeStep((3, 2), 4)])
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10, drop_tombstones=False
        )
        output = result.output_table
        for precision, seed in ((9, 0), (11, 3)):
            adopted = output.cached_sketch(precision, seed)
            assert adopted is not None
            fresh = HyperLogLog.of(output.key_set, precision=precision, seed=seed)
            assert adopted._registers == fresh._registers

    def test_no_propagation_without_input_sketches(self):
        tables = make_tables(2, seed=4)
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10
        )
        assert result.output_table.cached_sketch() is None

    def test_tombstone_drop_rebuilds_live_key_sketch(self):
        tables = make_tables(2, seed=5, tombstone_rate=0.4)
        for table in tables:
            table.sketch()
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10, drop_tombstones=True
        )
        # GC dropped keys, so the union sketch would overcount: the
        # output's sketch is rebuilt from the surviving keys instead and
        # must equal a fresh build exactly.
        output = result.output_table
        rebuilt = output.cached_sketch()
        assert rebuilt is not None
        assert rebuilt._registers == HyperLogLog.of(output.key_set)._registers

    def test_live_key_rebuild_only_for_common_parameterizations(self):
        # Only (precision, seed) pairs cached on *every* input are worth
        # keeping alive on the output; a one-sided cache is not rebuilt.
        tables = make_tables(2, seed=7, tombstone_rate=0.4)
        tables[0].sketch(precision=10)
        tables[0].sketch(precision=12)
        tables[1].sketch(precision=12)
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10, drop_tombstones=True
        )
        output = result.output_table
        assert output.cached_sketch(precision=10) is None
        assert output.cached_sketch(precision=12) is not None

    def test_tombstone_free_final_merge_still_propagates(self):
        tables = make_tables(2, seed=6)
        for table in tables:
            table.sketch()
        schedule = MergeSchedule(2, [MergeStep((0, 1), 2)])
        result = execute_schedule(
            tables, schedule, SimulatedDisk(), next_table_id=10, drop_tombstones=True
        )
        assert result.output_table.cached_sketch() is not None


class TestMajorCompactionSeeding:
    def test_inputs_gain_cached_sketches(self):
        tables = make_tables(5, seed=7)
        strategy = MajorCompaction("smallest_output", estimator="hll")
        result = strategy.compact(tables, SimulatedDisk(), next_table_id=100)
        assert all(table.cached_sketch() is not None for table in tables)
        assert result.output_table.cached_sketch() is not None
        assert result.extras["sketch_seconds"] >= 0.0

    def test_accepts_prebuilt_estimator_instance(self):
        from repro.core import HllEstimator

        tables = make_tables(5, seed=11)
        strategy = MajorCompaction(
            "smallest_output", estimator=HllEstimator(precision=10)
        )
        result = strategy.compact(tables, SimulatedDisk(), next_table_id=100)
        assert result.n_merges == 4
        assert all(table.cached_sketch(10, 0) is not None for table in tables)

    def test_exact_estimator_builds_no_sketches(self):
        tables = make_tables(5, seed=8)
        strategy = MajorCompaction("smallest_output", estimator="exact")
        strategy.compact(tables, SimulatedDisk(), next_table_id=100)
        assert all(table.cached_sketch() is None for table in tables)

    def test_non_estimator_policy_untouched(self):
        tables = make_tables(5, seed=9)
        MajorCompaction("smallest_input").compact(
            tables, SimulatedDisk(), next_table_id=100
        )
        assert all(table.cached_sketch() is None for table in tables)

    def test_schedule_identical_with_and_without_seeding(self):
        """Persistent sketches change overhead, never the schedule."""
        cold = make_tables(6, seed=10)
        warm = make_tables(6, seed=10)
        for table in warm:
            table.sketch()
        cold_result = MajorCompaction("smallest_output", estimator="hll").compact(
            cold, SimulatedDisk(), next_table_id=100
        )
        warm_result = MajorCompaction("smallest_output", estimator="hll").compact(
            warm, SimulatedDisk(), next_table_id=100
        )
        assert cold_result.schedule == warm_result.schedule


class TestControllerLifetimes:
    def _write(self, controller, key, seqno_hint):
        controller.apply(
            Operation(OperationType.INSERT, key, value_size=20)
        )

    def test_background_loop_reuses_survivor_sketch(self):
        engine = LSMEngine(EngineConfig(memtable_capacity=10, use_wal=False))
        controller = CompactionController(
            engine,
            strategy_factory=lambda: MajorCompaction(
                "smallest_output", estimator="hll", drop_tombstones=False
            ),
            table_threshold=4,
        )
        key = 0
        while not controller.history:
            self._write(controller, key, key)
            key += 1
        survivor = engine.sstables[0]
        first_sketch = survivor.cached_sketch()
        assert first_sketch is not None  # propagated through the merge tree
        while len(controller.history) < 2:
            self._write(controller, key, key)
            key += 1
        # The second compaction consumed the survivor without re-hashing
        # it: its cached sketch object was reused as-is.
        assert survivor.cached_sketch() is first_sketch
        assert engine.sstables[0].cached_sketch() is not None
