"""Tests for SSTable structure, reads and the k-way merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.lsm import Record, SSTable, merge_sstables, table_from_records


def make_table(table_id, keys, seqno_start=1, tombstones=(), value_size=100):
    records = []
    for offset, key in enumerate(sorted(keys)):
        seqno = seqno_start + offset
        if key in tombstones:
            records.append(Record.delete(key, seqno))
        else:
            records.append(Record.put(key, seqno, value_size))
    return SSTable(table_id, records)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            SSTable(0, [])

    def test_rejects_unsorted(self):
        records = [Record.put(2, 1), Record.put(1, 2)]
        with pytest.raises(StorageError):
            SSTable(0, records)

    def test_rejects_duplicate_keys(self):
        records = [Record.put(1, 1), Record.put(1, 2)]
        with pytest.raises(StorageError):
            SSTable(0, records)

    def test_metadata(self):
        table = make_table(7, [5, 1, 9])
        assert table.table_id == 7
        assert (table.min_key, table.max_key) == (1, 9)
        assert table.entry_count == len(table) == 3
        assert table.key_set == frozenset({1, 5, 9})

    def test_size_bytes(self):
        table = make_table(0, [1, 2], value_size=100)
        assert table.size_bytes == sum(r.size_bytes for r in table.records)

    def test_live_key_count_excludes_tombstones(self):
        table = make_table(0, [1, 2, 3], tombstones={2})
        assert table.live_key_count == 2


class TestReads:
    def test_point_lookup(self):
        keys = list(range(0, 1000, 3))
        table = make_table(0, keys)
        for key in (0, 3, 501, 999):
            record = table.get(key)
            assert (record is not None) == (key in set(keys))
        assert table.get(1) is None
        assert table.get(-5) is None
        assert table.get(10_000) is None

    def test_get_across_index_boundaries(self):
        """Probe around every sparse-index anchor."""
        keys = list(range(100))
        table = make_table(0, keys)
        for key in keys:
            assert table.get(key).key == key

    def test_may_contain(self):
        table = make_table(0, [10, 20, 30])
        assert table.may_contain(20)
        assert not table.may_contain(5)    # out of range
        assert not table.may_contain(100)  # out of range

    def test_scan(self):
        table = make_table(0, [1, 3, 5, 7, 9])
        assert [r.key for r in table.scan(3, 2)] == [3, 5]
        assert [r.key for r in table.scan(4, 2)] == [5, 7]
        assert table.scan(10, 3) == []

    def test_key_range_overlaps(self):
        a = make_table(0, [1, 5])
        b = make_table(1, [5, 9])
        c = make_table(2, [6, 9])
        assert a.key_range_overlaps(b)
        assert not a.key_range_overlaps(c)


class TestMerge:
    def test_newest_version_wins(self):
        old = SSTable(0, [Record.put("k", 1, value_size=1)])
        new = SSTable(1, [Record.put("k", 5, value_size=2)])
        merged = merge_sstables([old, new], new_table_id=2)
        assert merged.get("k").seqno == 5
        assert merged.entry_count == 1

    def test_union_of_keys(self):
        a = make_table(0, [1, 2, 3], seqno_start=1)
        b = make_table(1, [3, 4, 5], seqno_start=10)
        merged = merge_sstables([a, b], new_table_id=2)
        assert merged.key_set == frozenset({1, 2, 3, 4, 5})
        assert merged.get(3).seqno >= 10  # b's version is newer

    def test_tombstones_preserved_without_gc(self):
        a = make_table(0, [1, 2], seqno_start=1)
        b = make_table(1, [2], seqno_start=10, tombstones={2})
        merged = merge_sstables([a, b], new_table_id=2, drop_tombstones=False)
        assert merged.get(2).tombstone

    def test_tombstones_dropped_with_gc(self):
        a = make_table(0, [1, 2], seqno_start=1)
        b = make_table(1, [2], seqno_start=10, tombstones={2})
        merged = merge_sstables([a, b], new_table_id=2, drop_tombstones=True)
        assert merged.get(2) is None
        assert merged.key_set == frozenset({1})

    def test_stale_write_does_not_resurrect_deleted_key(self):
        """A tombstone newer than the put must win even if the put sits in
        another table."""
        put = SSTable(0, [Record.put("k", 5)])
        tomb = SSTable(1, [Record.delete("k", 9)])
        merged = merge_sstables([put, tomb], new_table_id=2)
        assert merged.get("k").tombstone

    def test_merge_three_way(self):
        tables = [make_table(i, range(i * 4, i * 4 + 6), seqno_start=i * 10 + 1) for i in range(3)]
        merged = merge_sstables(tables, new_table_id=9)
        assert merged.key_set == frozenset(range(0, 14))

    def test_merge_single_table_without_gc_is_identity(self):
        table = make_table(0, [1, 2])
        assert merge_sstables([table], new_table_id=1) is table

    def test_merge_zero_tables_rejected(self):
        with pytest.raises(StorageError):
            merge_sstables([], new_table_id=0)

    def test_all_tombstones_leaves_marker(self):
        table = make_table(0, [1], tombstones={1})
        merged = merge_sstables([table], new_table_id=1, drop_tombstones=True)
        assert merged.entry_count == 1  # representable marker survives

    @given(
        st.lists(
            st.sets(st.integers(0, 50), min_size=1, max_size=20),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_key_union_property(self, key_sets):
        seqno = 1
        tables = []
        for table_id, keys in enumerate(key_sets):
            records = []
            for key in sorted(keys):
                records.append(Record.put(key, seqno))
                seqno += 1
            tables.append(SSTable(table_id, records))
        merged = merge_sstables(tables, new_table_id=99)
        assert merged.key_set == frozenset().union(*key_sets)
        # newest-wins: every key's seqno equals the max across inputs
        for key in merged.key_set:
            expected = max(
                record.seqno
                for table in tables
                for record in table.records
                if record.key == key
            )
            assert merged.get(key).seqno == expected

    def test_table_from_records(self):
        table = table_from_records(3, [Record.put(1, 1), Record.put(2, 2)])
        assert table.table_id == 3
        assert table.entry_count == 2
