"""Tests for SSTable structure, reads and the k-way merge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.lsm import Record, SSTable, merge_sstables, table_from_records


def make_table(table_id, keys, seqno_start=1, tombstones=(), value_size=100):
    records = []
    for offset, key in enumerate(sorted(keys)):
        seqno = seqno_start + offset
        if key in tombstones:
            records.append(Record.delete(key, seqno))
        else:
            records.append(Record.put(key, seqno, value_size))
    return SSTable(table_id, records)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(StorageError):
            SSTable(0, [])

    def test_rejects_unsorted(self):
        records = [Record.put(2, 1), Record.put(1, 2)]
        with pytest.raises(StorageError):
            SSTable(0, records)

    def test_rejects_duplicate_keys(self):
        records = [Record.put(1, 1), Record.put(1, 2)]
        with pytest.raises(StorageError):
            SSTable(0, records)

    def test_metadata(self):
        table = make_table(7, [5, 1, 9])
        assert table.table_id == 7
        assert (table.min_key, table.max_key) == (1, 9)
        assert table.entry_count == len(table) == 3
        assert table.key_set == frozenset({1, 5, 9})

    def test_size_bytes(self):
        table = make_table(0, [1, 2], value_size=100)
        assert table.size_bytes == sum(r.size_bytes for r in table.records)

    def test_live_key_count_excludes_tombstones(self):
        table = make_table(0, [1, 2, 3], tombstones={2})
        assert table.live_key_count == 2


class TestReads:
    def test_point_lookup(self):
        keys = list(range(0, 1000, 3))
        table = make_table(0, keys)
        for key in (0, 3, 501, 999):
            record = table.get(key)
            assert (record is not None) == (key in set(keys))
        assert table.get(1) is None
        assert table.get(-5) is None
        assert table.get(10_000) is None

    def test_get_across_index_boundaries(self):
        """Probe around every sparse-index anchor."""
        keys = list(range(100))
        table = make_table(0, keys)
        for key in keys:
            assert table.get(key).key == key

    def test_may_contain(self):
        table = make_table(0, [10, 20, 30])
        assert table.may_contain(20)
        assert not table.may_contain(5)    # out of range
        assert not table.may_contain(100)  # out of range

    def test_scan(self):
        table = make_table(0, [1, 3, 5, 7, 9])
        assert [r.key for r in table.scan(3, 2)] == [3, 5]
        assert [r.key for r in table.scan(4, 2)] == [5, 7]
        assert table.scan(10, 3) == []

    def test_key_range_overlaps(self):
        a = make_table(0, [1, 5])
        b = make_table(1, [5, 9])
        c = make_table(2, [6, 9])
        assert a.key_range_overlaps(b)
        assert not a.key_range_overlaps(c)

    def test_get_batch_matches_get(self):
        pytest.importorskip("numpy")
        keys = list(range(0, 1000, 3))
        table = make_table(0, keys)
        queries = list(range(-5, 1010, 7))
        rows = table.get_batch(queries)
        assert rows is not None
        for query, row in zip(queries, rows.tolist()):
            record = table.get(query)
            if record is None:
                assert row == -1
            else:
                assert table.records[row] is record

    def test_get_batch_requires_int_columns(self):
        table = make_table(0, ["a", "b"])
        assert table.get_batch(["a"]) is None


class TestMerge:
    def test_newest_version_wins(self):
        old = SSTable(0, [Record.put("k", 1, value_size=1)])
        new = SSTable(1, [Record.put("k", 5, value_size=2)])
        merged = merge_sstables([old, new], new_table_id=2)
        assert merged.get("k").seqno == 5
        assert merged.entry_count == 1

    def test_union_of_keys(self):
        a = make_table(0, [1, 2, 3], seqno_start=1)
        b = make_table(1, [3, 4, 5], seqno_start=10)
        merged = merge_sstables([a, b], new_table_id=2)
        assert merged.key_set == frozenset({1, 2, 3, 4, 5})
        assert merged.get(3).seqno >= 10  # b's version is newer

    def test_tombstones_preserved_without_gc(self):
        a = make_table(0, [1, 2], seqno_start=1)
        b = make_table(1, [2], seqno_start=10, tombstones={2})
        merged = merge_sstables([a, b], new_table_id=2, drop_tombstones=False)
        assert merged.get(2).tombstone

    def test_tombstones_dropped_with_gc(self):
        a = make_table(0, [1, 2], seqno_start=1)
        b = make_table(1, [2], seqno_start=10, tombstones={2})
        merged = merge_sstables([a, b], new_table_id=2, drop_tombstones=True)
        assert merged.get(2) is None
        assert merged.key_set == frozenset({1})

    def test_stale_write_does_not_resurrect_deleted_key(self):
        """A tombstone newer than the put must win even if the put sits in
        another table."""
        put = SSTable(0, [Record.put("k", 5)])
        tomb = SSTable(1, [Record.delete("k", 9)])
        merged = merge_sstables([put, tomb], new_table_id=2)
        assert merged.get("k").tombstone

    def test_merge_three_way(self):
        tables = [make_table(i, range(i * 4, i * 4 + 6), seqno_start=i * 10 + 1) for i in range(3)]
        merged = merge_sstables(tables, new_table_id=9)
        assert merged.key_set == frozenset(range(0, 14))

    def test_merge_single_table_without_gc_is_identity(self):
        table = make_table(0, [1, 2])
        assert merge_sstables([table], new_table_id=1) is table

    def test_merge_zero_tables_rejected(self):
        with pytest.raises(StorageError):
            merge_sstables([], new_table_id=0)

    def test_all_tombstones_leaves_marker(self):
        table = make_table(0, [1], tombstones={1})
        merged = merge_sstables([table], new_table_id=1, drop_tombstones=True)
        assert merged.entry_count == 1  # representable marker survives

    @given(
        st.lists(
            st.sets(st.integers(0, 50), min_size=1, max_size=20),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_key_union_property(self, key_sets):
        seqno = 1
        tables = []
        for table_id, keys in enumerate(key_sets):
            records = []
            for key in sorted(keys):
                records.append(Record.put(key, seqno))
                seqno += 1
            tables.append(SSTable(table_id, records))
        merged = merge_sstables(tables, new_table_id=99)
        assert merged.key_set == frozenset().union(*key_sets)
        # newest-wins: every key's seqno equals the max across inputs
        for key in merged.key_set:
            expected = max(
                record.seqno
                for table in tables
                for record in table.records
                if record.key == key
            )
            assert merged.get(key).seqno == expected

    def test_table_from_records(self):
        table = table_from_records(3, [Record.put(1, 1), Record.put(2, 2)])
        assert table.table_id == 3
        assert table.entry_count == 2


np = pytest.importorskip(
    "numpy", reason="columnar tests need numpy", exc_type=ImportError
)


def make_columnar(table_id, keys, seqno_start=1, tombstones=(), value_size=100):
    keys = sorted(keys)
    seqnos = list(range(seqno_start, seqno_start + len(keys)))
    mask = [key in tombstones for key in keys]
    values = [0 if dead else value_size for dead in mask]
    return SSTable.from_columns(
        table_id, keys, seqnos, values, mask if any(mask) else None
    )


class TestColumnarTables:
    def test_matches_record_backed_twin(self):
        record_table = make_table(3, [5, 1, 9], tombstones={5})
        columnar = make_columnar(3, [5, 1, 9], tombstones={5})
        assert columnar.records == record_table.records
        assert columnar.size_bytes == record_table.size_bytes
        assert columnar.key_set == record_table.key_set
        assert columnar.live_key_count == record_table.live_key_count
        assert columnar.max_seqno == record_table.max_seqno
        assert columnar.min_seqno == record_table.min_seqno
        assert (columnar.min_key, columnar.max_key) == (1, 9)

    def test_records_materialize_lazily(self):
        table = make_columnar(0, range(10))
        assert "records" not in vars(table)
        assert table.get(3).key == 3  # read path materializes
        assert "records" in vars(table)
        assert all(isinstance(record.key, int) for record in table.records)

    def test_rejects_bad_columns(self):
        with pytest.raises(StorageError):
            SSTable.from_columns(0, [], [])
        with pytest.raises(StorageError):
            SSTable.from_columns(0, [2, 1], [1, 2])  # unsorted
        with pytest.raises(StorageError):
            SSTable.from_columns(0, [1, 1], [1, 2])  # duplicate keys
        with pytest.raises(StorageError):
            SSTable.from_columns(0, [1, 2], [1])  # ragged seqnos

    def test_column_view_built_from_records(self):
        table = make_table(0, [1, 2, 3], tombstones={2})
        columns = table.columns()
        assert columns is not None
        assert columns.keys.tolist() == [1, 2, 3]
        assert columns.tombstones.tolist() == [False, True, False]
        assert table.columns() is columns  # cached

    def test_column_view_unavailable_for_string_keys(self):
        table = SSTable(0, [Record.put("a", 1), Record.put("b", 2)])
        assert table.columns() is None

    def test_column_view_unavailable_for_payload_values(self):
        table = SSTable(0, [Record.put(1, 1, value=b"xyz")])
        assert table.columns() is None

    def test_bloom_batch_matches_scalar_inserts(self):
        from repro.lsm import BloomFilter

        keys = list(range(500))
        batched = BloomFilter(len(keys))
        batched.add_all(keys)
        scalar = BloomFilter(len(keys))
        for key in keys:
            scalar.add(key)
        assert bytes(batched._bits) == bytes(scalar._bits)
        assert len(batched) == len(scalar)


class TestMergeKernels:
    def tables(self, tombstones=()):
        return [
            make_table(0, [1, 3, 5, 7], seqno_start=1),
            make_table(1, [2, 3, 8], seqno_start=10, tombstones=tombstones),
            make_table(2, [1, 8, 9], seqno_start=20),
        ]

    @pytest.mark.parametrize("drop", [False, True])
    @pytest.mark.parametrize("tombstones", [(), (3, 8)])
    def test_columnar_equals_heap(self, drop, tombstones):
        columnar = merge_sstables(
            self.tables(tombstones), 99, drop_tombstones=drop, kernel="columnar"
        )
        heap = merge_sstables(
            self.tables(tombstones), 99, drop_tombstones=drop, kernel="heap"
        )
        assert columnar.records == heap.records
        assert columnar.size_bytes == heap.size_bytes
        assert columnar.table_id == heap.table_id == 99

    def test_columnar_all_tombstoned_keeps_marker(self):
        tables = [
            make_table(0, [1], seqno_start=1),
            make_table(1, [1], seqno_start=5, tombstones={1}),
        ]
        columnar = merge_sstables(tables, 7, drop_tombstones=True, kernel="columnar")
        heap = merge_sstables(tables, 7, drop_tombstones=True, kernel="heap")
        assert columnar.records == heap.records
        assert columnar.records[0].tombstone

    def test_same_key_same_seqno_tie_break(self):
        """Degenerate equal (key, seqno) inputs: earliest table wins in
        both kernels (heapq.merge stability)."""
        first = SSTable(0, [Record.put(1, 5, value_size=11)])
        second = SSTable(1, [Record.put(1, 5, value_size=22)])
        columnar = merge_sstables([first, second], 9, kernel="columnar")
        heap = merge_sstables([first, second], 9, kernel="heap")
        assert columnar.records == heap.records
        assert columnar.records[0].value_size == 11

    def test_columnar_kernel_requires_columns(self):
        table = SSTable(0, [Record.put("a", 1)])
        other = SSTable(1, [Record.put("b", 2)])
        with pytest.raises(StorageError):
            merge_sstables([table, other], 5, kernel="columnar")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(StorageError):
            merge_sstables([make_table(0, [1])], 5, kernel="vectorized")

    def test_auto_falls_back_to_heap_for_string_keys(self):
        a = SSTable(0, [Record.put("a", 1)])
        b = SSTable(1, [Record.put("b", 2)])
        merged = merge_sstables([a, b], 5)  # auto; must not raise
        assert merged.key_set == frozenset({"a", "b"})


class TestSingleInputShortcut:
    def test_returns_input_aliased_and_ignores_new_table_id(self):
        table = make_columnar(4, [1, 2, 3])
        merged = merge_sstables([table], new_table_id=123)
        assert merged is table
        assert merged.table_id == 4  # new_table_id ignored by design

    def test_shortcut_applies_even_with_tombstones_present(self):
        table = make_columnar(4, [1, 2, 3], tombstones={2})
        assert merge_sstables([table], new_table_id=9) is table

    def test_drop_tombstones_disables_shortcut(self):
        table = make_columnar(4, [1, 2, 3], tombstones={2})
        merged = merge_sstables([table], new_table_id=9, drop_tombstones=True)
        assert merged is not table
        assert merged.table_id == 9
        assert merged.key_set == frozenset({1, 3})

    def test_shortcut_preserves_cached_sketches(self):
        table = make_columnar(4, [1, 2, 3])
        sketch = table.sketch(precision=10)
        merged = merge_sstables([table], new_table_id=9)
        assert merged.cached_sketch(precision=10) is sketch


class TestColumnarSketchPropagation:
    """drop_tombstones x sketch persistence on the columnar kernel."""

    def execute(self, tables, drop_tombstones):
        from repro.core.schedule import MergeSchedule, MergeStep
        from repro.lsm import SimulatedDisk, execute_schedule

        schedule = MergeSchedule(
            n_initial=len(tables),
            steps=(
                MergeStep(inputs=tuple(range(len(tables))), output=len(tables)),
            ),
        )
        return execute_schedule(
            tables,
            schedule,
            SimulatedDisk(),
            next_table_id=100,
            drop_tombstones=drop_tombstones,
            merge_kernel="columnar",
        )

    def test_sketches_propagate_without_tombstones(self):
        tables = [make_columnar(0, [1, 2, 3]), make_columnar(1, [3, 4, 5], seqno_start=10)]
        for table in tables:
            table.sketch(precision=10)
        result = self.execute(tables, drop_tombstones=True)
        adopted = result.output_table.cached_sketch(precision=10)
        assert adopted is not None
        # Lossless adoption: identical to a sketch built from scratch.
        from repro.hll import HyperLogLog

        rebuilt = HyperLogLog.of([1, 2, 3, 4, 5], precision=10)
        assert adopted.cardinality() == rebuilt.cardinality()

    def test_gc_with_tombstones_rebuilds_live_key_sketch(self):
        """Tombstone GC may drop keys, so adopting input sketches would
        overcount; the output instead gets a sketch rebuilt from its
        surviving keys — bottommost tables keep their caches too."""
        from repro.hll import HyperLogLog

        tables = [
            make_columnar(0, [1, 2, 3]),
            make_columnar(1, [2, 6], seqno_start=10, tombstones={2}),
        ]
        for table in tables:
            table.sketch(precision=10)
        result = self.execute(tables, drop_tombstones=True)
        assert result.output_table.key_set == frozenset({1, 3, 6})
        rebuilt = result.output_table.cached_sketch(precision=10)
        assert rebuilt is not None
        fresh = HyperLogLog.of([1, 3, 6], precision=10)
        assert rebuilt._registers == fresh._registers

    def test_no_gc_propagates_despite_tombstones(self):
        """Without GC the output keys are exactly the input union, so
        adoption stays lossless even with tombstones present."""
        tables = [
            make_columnar(0, [1, 2, 3]),
            make_columnar(1, [2, 6], seqno_start=10, tombstones={2}),
        ]
        for table in tables:
            table.sketch(precision=10)
        result = self.execute(tables, drop_tombstones=False)
        assert result.output_table.cached_sketch(precision=10) is not None
