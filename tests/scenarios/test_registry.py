"""The built-in registry: legacy figures + new presets, by contract."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import REGISTRY, Scenario, ScenarioRegistry
from repro.simulator import SimulationConfig

LEGACY_FIGURES = ("fig7a", "fig7b", "fig8", "fig9a", "fig9b")
NEW_PRESETS = ("read-heavy", "timeseries-scan", "churn")


class TestBuiltins:
    @pytest.mark.parametrize("name", LEGACY_FIGURES)
    def test_every_legacy_figure_registered(self, name):
        assert name in REGISTRY

    @pytest.mark.parametrize("name", NEW_PRESETS)
    def test_new_presets_registered(self, name):
        scenario = REGISTRY.get(name)
        assert "preset" in scenario.tags

    def test_at_least_three_presets_beyond_legacy_drivers(self):
        """The presets need mix shapes the old figure CLIs had no flags for."""
        presets = REGISTRY.scenarios("preset")
        assert len(presets) >= 3
        for scenario in presets:
            config = scenario.config
            assert (
                config.read_fraction > 0
                or config.scan_fraction > 0
                or config.delete_fraction > 0
            ), scenario.name

    def test_ablations_registered(self):
        assert "distributions" in REGISTRY
        practical = REGISTRY.get("practical")
        assert "STCS" in practical.strategies
        assert "LEVELED" in practical.strategies

    def test_fig7a_matches_paper_settings(self):
        scenario = REGISTRY.get("fig7a")
        assert scenario.config == SimulationConfig.figure7(0.0, "latest")
        assert scenario.sweep.parameter == "update_fraction"
        assert scenario.sweep.values == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert scenario.runs == 3

    def test_fig8_sweep_shape(self):
        scenario = REGISTRY.get("fig8")
        assert scenario.sweep.parameter == "memtable_capacity"
        assert scenario.sweep.values == (10, 100, 1000, 10_000)
        assert scenario.sweep.fast_values == (10, 100, 1000)
        assert scenario.sweep.n_sstables == 100
        assert scenario.strategies == ("BT(I)",)

    def test_fig9_distribution_axis(self):
        for name in ("fig9a", "fig9b"):
            assert REGISTRY.get(name).distributions == (
                "uniform", "zipfian", "latest"
            )


class TestRegistryBehavior:
    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario("dup", "t", SimulationConfig())
        registry.register(scenario)
        with pytest.raises(ScenarioError):
            registry.register(scenario)
        registry.register(scenario, replace=True)  # explicit override ok
        assert len(registry) == 1

    def test_unknown_name_lists_known(self):
        with pytest.raises(ScenarioError, match="fig7a"):
            REGISTRY.get("nope")

    def test_tag_filtering(self):
        figures = REGISTRY.scenarios("figure")
        assert {scenario.name for scenario in figures} == set(LEGACY_FIGURES)
