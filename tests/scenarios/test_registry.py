"""The built-in registry: legacy figures + new presets, by contract."""

from dataclasses import replace

import pytest

from repro.errors import ScenarioError
from repro.scenarios import REGISTRY, Scenario, ScenarioRegistry
from repro.simulator import SimulationConfig, fast_plane_eligible, resolve_plane

LEGACY_FIGURES = ("fig7a", "fig7b", "fig8", "fig9a", "fig9b")
NEW_PRESETS = ("read-heavy", "timeseries-scan", "churn")
YCSB_PRESETS = tuple(f"ycsb-{letter}" for letter in "abcdef")


class TestBuiltins:
    @pytest.mark.parametrize("name", LEGACY_FIGURES)
    def test_every_legacy_figure_registered(self, name):
        assert name in REGISTRY

    @pytest.mark.parametrize("name", NEW_PRESETS)
    def test_new_presets_registered(self, name):
        scenario = REGISTRY.get(name)
        assert "preset" in scenario.tags

    def test_at_least_three_presets_beyond_legacy_drivers(self):
        """The workload presets need mix shapes the old figure CLIs had
        no flags for."""
        presets = REGISTRY.scenarios("workload")
        assert len(presets) >= 3
        for scenario in presets:
            config = scenario.config
            assert (
                config.read_fraction > 0
                or config.scan_fraction > 0
                or config.delete_fraction > 0
            ), scenario.name

    @pytest.mark.parametrize("name", YCSB_PRESETS)
    def test_ycsb_workloads_registered(self, name):
        scenario = REGISTRY.get(name)
        assert "ycsb" in scenario.tags
        config = scenario.config
        # Every YCSB shape has a non-write slice except none of A-F is
        # writes-only; the mixes must sum within the unit interval.
        assert config.read_fraction + config.scan_fraction > 0
        assert (
            config.read_fraction
            + config.scan_fraction
            + config.delete_fraction
            <= 1.0
        )

    def test_ycsb_mixes_match_the_canonical_table(self):
        """Spot-check the A-F proportions against repro.ycsb.presets."""
        approx = pytest.approx
        a = REGISTRY.get("ycsb-a").config.workload_config()
        assert (a.read_proportion, a.update_proportion) == approx((0.5, 0.5))
        b = REGISTRY.get("ycsb-b").config.workload_config()
        assert (b.read_proportion, b.update_proportion) == approx((0.95, 0.05))
        c = REGISTRY.get("ycsb-c").config.workload_config()
        assert c.read_proportion == 1.0
        assert c.insert_proportion == c.update_proportion == 0.0
        d = REGISTRY.get("ycsb-d").config.workload_config()
        assert (d.read_proportion, d.insert_proportion) == approx((0.95, 0.05))
        assert d.update_proportion == 0.0
        assert d.distribution == "latest"
        e = REGISTRY.get("ycsb-e").config.workload_config()
        assert (e.scan_proportion, e.insert_proportion) == approx((0.95, 0.05))

    def test_kernel_sweep_presets_registered(self):
        k_sweep = REGISTRY.get("k-sweep")
        assert k_sweep.sweep.parameter == "k"
        assert all(value >= 2 for value in k_sweep.sweep.values)
        hll_sweep = REGISTRY.get("hll-sweep")
        assert hll_sweep.sweep.parameter == "hll_precision"
        assert set(hll_sweep.strategies) == {"SO", "BT(O)"}

    def test_ablations_registered(self):
        assert "distributions" in REGISTRY
        practical = REGISTRY.get("practical")
        assert "STCS" in practical.strategies
        assert "LEVELED" in practical.strategies

    def test_fig7a_matches_paper_settings(self):
        scenario = REGISTRY.get("fig7a")
        assert scenario.config == SimulationConfig.figure7(0.0, "latest")
        assert scenario.sweep.parameter == "update_fraction"
        assert scenario.sweep.values == (0.0, 0.25, 0.5, 0.75, 1.0)
        assert scenario.runs == 3

    def test_fig8_sweep_shape(self):
        scenario = REGISTRY.get("fig8")
        assert scenario.sweep.parameter == "memtable_capacity"
        assert scenario.sweep.values == (10, 100, 1000, 10_000)
        assert scenario.sweep.fast_values == (10, 100, 1000)
        assert scenario.sweep.n_sstables == 100
        assert scenario.strategies == ("BT(I)",)

    def test_fig9_distribution_axis(self):
        for name in ("fig9a", "fig9b"):
            assert REGISTRY.get(name).distributions == (
                "uniform", "zipfian", "latest"
            )


class TestRegistryBehavior:
    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()
        scenario = Scenario("dup", "t", SimulationConfig())
        registry.register(scenario)
        with pytest.raises(ScenarioError):
            registry.register(scenario)
        registry.register(scenario, replace=True)  # explicit override ok
        assert len(registry) == 1

    def test_unknown_name_lists_known(self):
        with pytest.raises(ScenarioError, match="fig7a"):
            REGISTRY.get("nope")

    def test_tag_filtering(self):
        figures = REGISTRY.scenarios("figure")
        assert {scenario.name for scenario in figures} == set(LEGACY_FIGURES)


class TestUniversalFastPlane:
    """Every registered scenario runs the columnar plane under "auto".

    A quiet reference fallback made map-mode and read/scan experiments
    an order of magnitude slower than the write-only figures without
    anyone noticing.  This contract makes that impossible: a scenario
    that genuinely needs the operation-at-a-time loop must carry the
    ``reference-only`` tag, every other registered spec must resolve to
    the fast plane for its base config, its fast variant, every
    distribution on its axis, and every value of its sweep.
    """

    @staticmethod
    def _sweep_configs(scenario, config):
        sweep = scenario.sweep
        if sweep is None:
            return
        for value in sweep.values:
            if sweep.parameter == "memtable_capacity":
                capacity = int(value)
                yield replace(
                    config,
                    memtable_capacity=capacity,
                    operationcount=capacity * sweep.n_sstables
                    - config.recordcount,
                )
            elif sweep.parameter in ("operationcount", "k", "hll_precision"):
                yield replace(config, **{sweep.parameter: int(value)})
            else:
                yield replace(config, **{sweep.parameter: value})

    @pytest.mark.parametrize(
        "scenario", list(REGISTRY), ids=lambda scenario: scenario.name
    )
    def test_every_scenario_is_fast_plane_eligible(self, scenario):
        if "reference-only" in scenario.tags:
            pytest.skip(f"{scenario.name} is explicitly reference-only")
        for fast in (False, True):
            base = scenario.config_for(fast)
            assert base.data_plane == "auto", scenario.name
            for distribution in scenario.distributions_for():
                config = replace(base, distribution=distribution)
                assert fast_plane_eligible(config), (scenario.name, distribution)
                assert resolve_plane(config) == "fast"
                for point_config in self._sweep_configs(scenario, config):
                    assert fast_plane_eligible(point_config), (
                        scenario.name,
                        distribution,
                        scenario.sweep.parameter,
                    )
