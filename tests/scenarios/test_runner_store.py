"""End-to-end ExperimentRunner + ResultsStore at tiny scale."""

import json

import pytest

from repro.errors import ResultsStoreError, ScenarioError
from repro.scenarios import (
    REGISTRY,
    ExperimentRunner,
    ResultsStore,
    Scenario,
    SweepSpec,
)
from repro.scenarios.store import SCHEMA_VERSION
from repro.simulator import SimulationConfig
from repro.simulator.runner import ComparisonResult, SweepResult

TINY = {"recordcount": 150, "operationcount": 1500, "memtable_capacity": 150}


@pytest.fixture()
def store(tmp_path):
    return ResultsStore(tmp_path / "runs")


@pytest.fixture()
def runner(store):
    return ExperimentRunner(store=store)


class TestRunner:
    def test_comparison_scenario(self, runner):
        run = runner.run("churn", runs=1, overrides=TINY)
        assert set(run.results) == {"uniform"}
        comparison = run.results["uniform"]
        assert isinstance(comparison, ComparisonResult)
        assert set(comparison.per_strategy) == set(run.scenario.strategies)
        assert run.config.operationcount == 1500
        assert "churn" in run.render()

    def test_sweep_scenario(self, runner):
        run = runner.run(
            "fig7a",
            runs=1,
            overrides={**TINY, "operationcount": 1000},
        )
        sweep = run.results["latest"]
        assert isinstance(sweep, SweepResult)
        assert [point.x for point in sweep.points] == [0.0, 25.0, 50.0, 75.0, 100.0]

    def test_distribution_axis(self, runner):
        scenario = REGISTRY.get("distributions")
        run = runner.run(scenario, runs=1, overrides=TINY)
        assert set(run.results) == {"uniform", "zipfian", "latest"}

    @pytest.mark.parametrize("name", ("read-heavy", "timeseries-scan"))
    def test_new_mix_presets_execute(self, runner, name):
        """Read/scan mixes run end to end (on the fast plane)."""
        run = runner.run(name, runs=1, overrides=TINY)
        assert run.plane_used == "fast"
        (comparison,) = run.results.values()
        for agg in comparison.per_strategy.values():
            assert agg.cost_actual_mean > 0

    def test_practical_strategies_execute(self, runner):
        run = runner.run("practical", runs=1, overrides=TINY)
        (comparison,) = run.results.values()
        assert set(comparison.per_strategy) == {"SI", "BT(I)", "STCS", "LEVELED"}

    def test_practical_strategies_honor_reference_kernel(self):
        """data_plane='reference' pins the heap kernel on STCS/LEVELED too."""
        from repro.simulator import build_strategy

        config = REGISTRY.get("practical").config
        for label in ("STCS", "LEVELED"):
            assert build_strategy(label, config).merge_kernel == "auto"
            reference = config.overridden({"data_plane": "reference"})
            assert build_strategy(label, reference).merge_kernel == "heap"

    def test_distribution_override_wins_and_is_recorded(self, runner):
        """A --set distribution=X override must actually run X."""
        run = runner.run(
            "fig7a",
            runs=1,
            overrides={**TINY, "operationcount": 1000, "distribution": "uniform"},
        )
        assert run.config.distribution == "uniform"
        assert set(run.results) == {"uniform"}
        # and it replaces a spec's whole distribution axis, not one leg
        run = runner.run(
            "distributions",
            runs=1,
            overrides={**TINY, "distribution": "zipfian"},
        )
        assert set(run.results) == {"zipfian"}

    def test_strategy_override(self, runner):
        run = runner.run("churn", runs=1, overrides=TINY, strategies=("SI",))
        (comparison,) = run.results.values()
        assert set(comparison.per_strategy) == {"SI"}

    def test_unknown_scenario_raises(self, runner):
        with pytest.raises(ScenarioError):
            runner.run("not-a-scenario")

    def test_bad_override_raises(self, runner):
        with pytest.raises(Exception):
            runner.run("churn", runs=1, overrides={"not_a_field": 1})

    def test_override_of_swept_parameter_rejected(self, runner):
        """The sweep would silently discard it while the manifest
        recorded it as applied — refuse instead."""
        with pytest.raises(ScenarioError, match="update_fraction"):
            runner.run("fig7a", runs=1, overrides={"update_fraction": 0.3})
        # Figure-8 style sweeps also derive operationcount per point
        with pytest.raises(ScenarioError, match="operationcount"):
            runner.run("fig8", runs=1, overrides={"operationcount": 1000})
        with pytest.raises(ScenarioError, match="memtable_capacity"):
            runner.run("fig8", runs=1, overrides={"memtable_capacity": 10})

    def test_churn_mix_identical_across_data_planes(self):
        """Delete mixes batch on the fast plane; planes stay bit-identical."""
        from repro.simulator import fast_plane_eligible, generate_sstables

        base = REGISTRY.get("churn").config.overridden(TINY)
        assert fast_plane_eligible(base)
        fast = generate_sstables(base.overridden({"data_plane": "fast"}))
        reference = generate_sstables(base.overridden({"data_plane": "reference"}))
        assert [t.records for t in fast.tables] == [
            t.records for t in reference.tables
        ]

    def test_read_scan_mixes_identical_across_data_planes(self):
        """Read/scan mixes batch on the fast plane bit-identically."""
        from repro.simulator import fast_plane_eligible, generate_sstables

        for name in ("read-heavy", "timeseries-scan"):
            base = REGISTRY.get(name).config.overridden(TINY)
            assert fast_plane_eligible(base)
            fast = generate_sstables(base.overridden({"data_plane": "fast"}))
            reference = generate_sstables(
                base.overridden({"data_plane": "reference"})
            )
            assert fast.plane_used == "fast"
            assert reference.plane_used == "reference"
            assert [t.records for t in fast.tables] == [
                t.records for t in reference.tables
            ]

    def test_jobs_do_not_change_results(self, store):
        serial = ExperimentRunner(store=None, jobs=1).run(
            "churn", runs=2, overrides=TINY
        )
        parallel = ExperimentRunner(store=None, jobs=2).run(
            "churn", runs=2, overrides=TINY
        )
        for label in serial.scenario.strategies:
            a = serial.results["uniform"].per_strategy[label]
            b = parallel.results["uniform"].per_strategy[label]
            # Deterministic outputs only: the aggregate seconds fold in
            # measured wall-clock strategy overhead, which varies.
            assert a.cost_actual_mean == b.cost_actual_mean
            assert a.cost_actual_std == b.cost_actual_std
            assert a.lopt_entries_mean == b.lopt_entries_mean


class TestStore:
    def test_manifest_written_and_loaded(self, runner, store):
        run, path = runner.run_and_record("churn", runs=1, overrides=TINY)
        manifest = store.load(path)
        assert manifest.schema_version == SCHEMA_VERSION
        assert manifest.spec_hash == run.scenario.spec_hash()
        assert manifest.config["operationcount"] == 1500
        assert manifest.runs == 1
        assert manifest.plane_used == "fast"
        assert len(manifest.cells) == len(run.scenario.strategies)
        for cell in manifest.cells:
            assert cell["distribution"] == "uniform"
            assert cell["plane_used"] == "fast"
            assert cell["cost_actual_mean"] > 0

    def test_manifest_records_reference_fallback(self, runner, store):
        """A forced reference run can never masquerade as a fast one."""
        run, path = runner.run_and_record(
            "churn", runs=1, overrides={**TINY, "data_plane": "reference"}
        )
        assert run.plane_used == "reference"
        manifest = store.load(path)
        assert manifest.plane_used == "reference"
        assert {cell["plane_used"] for cell in manifest.cells} == {"reference"}

    def test_manifest_spec_is_rerunnable(self, runner, store):
        _, path = runner.run_and_record("read-heavy", runs=1, overrides=TINY)
        manifest = store.load(path)
        rebuilt = Scenario.from_dict(manifest.scenario)
        assert rebuilt == REGISTRY.get("read-heavy")

    def test_sweep_cells_carry_x_and_parameter(self, runner, store):
        _, path = runner.run_and_record(
            "fig7a", runs=1, overrides={**TINY, "operationcount": 1000}
        )
        cells = store.load(path).cells
        assert len(cells) == 5 * 5  # 5 fractions x 5 strategies
        # the executed axis name matches the unit x is expressed in
        # (percent), not the spec's fraction-valued parameter name
        assert {cell["parameter"] for cell in cells} == {"update_percentage"}
        assert {cell["x"] for cell in cells} == {0.0, 25.0, 50.0, 75.0, 100.0}

    def test_manifests_iteration_and_latest(self, runner, store):
        runner.run_and_record("churn", runs=1, overrides=TINY)
        runner.run_and_record("churn", runs=1, overrides=TINY)
        manifests = list(store.manifests("churn"))
        assert len(manifests) == 2
        assert store.latest("churn").run_id == manifests[-1].run_id
        assert store.latest("fig8") is None

    def test_collision_suffix(self, runner, store):
        """Two runs in the same second get distinct run ids."""
        run = runner.run("churn", runs=1, overrides=TINY)
        first = store.write(run)
        second = store.write(run)
        assert first != second

    def test_same_second_collisions_stay_oldest_first(self, runner, store):
        """'base-1.json' sorts before 'base.json' on filenames ('-' <
        '.'), so ordering must come from manifest content instead."""
        run = runner.run("churn", runs=1, overrides=TINY)
        ids = [store.load(store.write(run)).run_id for _ in range(3)]
        listed = [m.run_id for m in store.manifests("churn")]
        assert listed == ids
        assert store.latest("churn").run_id == ids[-1]

    def test_newer_schema_rejected(self, runner, store, tmp_path):
        _, path = runner.run_and_record("churn", runs=1, overrides=TINY)
        document = json.loads(path.read_text())
        document["schema_version"] = SCHEMA_VERSION + 1
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(document))
        with pytest.raises(ResultsStoreError):
            store.load(bad)

    def test_corrupt_manifest_rejected(self, store, tmp_path):
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        with pytest.raises(ResultsStoreError):
            store.load(bad)


class TestKernelSweeps:
    def test_k_sweep_preset_executes(self, runner):
        run = runner.run("k-sweep", runs=1, overrides=TINY)
        sweep = run.results["latest"]
        assert sweep.parameter == "k"
        assert [point.x for point in sweep.points] == [2.0, 3.0, 4.0, 6.0, 8.0]
        assert set(sweep.labels) == {"SI", "BT(I)"}

    def test_hll_sweep_preset_executes(self, runner):
        run = runner.run("hll-sweep", runs=1, overrides=TINY)
        sweep = run.results["latest"]
        assert sweep.parameter == "hll_precision"
        assert [point.config.hll_precision for point in sweep.points] == [
            8, 10, 12, 14,
        ]


class TestAdhocScenario:
    def test_unregistered_spec_runs(self, runner):
        scenario = Scenario(
            name="adhoc",
            title="tiny ad-hoc sweep",
            config=SimulationConfig(**TINY, update_fraction=0.5),
            strategies=("SI", "RANDOM"),
            sweep=SweepSpec("operationcount", (500, 1000)),
        )
        run = runner.run(scenario, runs=1)
        sweep = run.results["latest"]
        assert [point.x for point in sweep.points] == [500.0, 1000.0]
