"""Round-trip and validation tests for the declarative scenario spec."""

import json

import pytest

from repro.errors import ConfigError, ScenarioError
from repro.scenarios import REGISTRY, Scenario, SweepSpec
from repro.scenarios.spec import SWEEP_PARAMETERS
from repro.simulator import SimulationConfig


class TestSweepSpec:
    def test_roundtrip(self):
        spec = SweepSpec("update_fraction", (0.0, 0.5, 1.0), fast_values=(0.0,))
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_values_coerced_to_tuple(self):
        spec = SweepSpec("operationcount", [1000, 2000])
        assert spec.values == (1000, 2000)

    def test_fast_values_selection(self):
        spec = SweepSpec("update_fraction", (0.0, 1.0), fast_values=(0.5,))
        assert spec.values_for(fast=False) == (0.0, 1.0)
        assert spec.values_for(fast=True) == (0.5,)
        assert SweepSpec("update_fraction", (0.0,)).values_for(True) == (0.0,)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ScenarioError):
            SweepSpec("disk_bandwidth", (1.0,))

    def test_empty_values_rejected(self):
        with pytest.raises(ScenarioError):
            SweepSpec("update_fraction", ())

    def test_unknown_field_rejected(self):
        with pytest.raises(ScenarioError):
            SweepSpec.from_dict({"parameter": "update_fraction", "values": [1], "vibes": 1})


class TestScenarioValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario("x", "t", SimulationConfig(), strategies=("WAT",))

    def test_empty_strategies_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario("x", "t", SimulationConfig(), strategies=())

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ScenarioError):
            Scenario("x", "t", SimulationConfig(), distributions=("gaussian",))

    def test_bad_fast_override_rejected_at_construction(self):
        with pytest.raises(Exception):  # ConfigError via overridden()
            Scenario("x", "t", SimulationConfig(), fast_overrides={"nope": 1})

    def test_fast_overrides_tuple_form_normalized_like_dict(self):
        """Unsorted pair-tuple input must round-trip (sorted) like a dict."""
        scenario = Scenario(
            "x", "t", SimulationConfig(),
            fast_overrides=(("operationcount", 10), ("k", 3)),
        )
        assert scenario.fast_overrides == (("k", 3), ("operationcount", 10))
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_fast_overrides_dict_normalized(self):
        scenario = Scenario(
            "x", "t", SimulationConfig(), fast_overrides={"operationcount": 10}
        )
        assert scenario.fast_overrides == (("operationcount", 10),)
        assert scenario.config_for(fast=True).operationcount == 10
        assert scenario.config_for(fast=False) == scenario.config

    def test_runs_resolution(self):
        scenario = Scenario("x", "t", SimulationConfig(), runs=5, fast_runs=2)
        assert scenario.runs_for() == 5
        assert scenario.runs_for(fast=True) == 2
        assert scenario.runs_for(fast=True, runs=9) == 9


class TestRegisteredScenarioRoundtrips:
    """The satellite contract: dict -> Scenario -> dict is idempotent."""

    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_spec_roundtrip(self, name):
        scenario = REGISTRY.get(name)
        data = scenario.to_dict()
        rebuilt = Scenario.from_dict(data)
        assert rebuilt == scenario
        assert rebuilt.to_dict() == data

    @pytest.mark.parametrize("name", REGISTRY.names())
    def test_json_roundtrip_and_hash_stability(self, name):
        scenario = REGISTRY.get(name)
        via_json = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert via_json == scenario
        assert via_json.spec_hash() == scenario.spec_hash()

    def test_hashes_distinct_across_registry(self):
        hashes = {scenario.spec_hash() for scenario in REGISTRY}
        assert len(hashes) == len(REGISTRY)

    def test_spec_version_guard(self):
        data = REGISTRY.get("fig7a").to_dict()
        data["spec_version"] = 99
        with pytest.raises(ScenarioError):
            Scenario.from_dict(data)


class TestClusterSweepParameters:
    """The scale-out tier's sweep axes and presets (docs/sharding.md)."""

    def test_cluster_parameters_registered(self):
        assert "num_shards" in SWEEP_PARAMETERS
        assert "shard_skew" in SWEEP_PARAMETERS

    @pytest.mark.parametrize(
        "parameter,values",
        [("num_shards", (1, 2, 4, 8)), ("shard_skew", (0.0, 0.5, 0.99))],
    )
    def test_cluster_sweepspec_roundtrip(self, parameter, values):
        spec = SweepSpec(parameter, values)
        assert SweepSpec.from_dict(spec.to_dict()) == spec
        via_json = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert via_json == spec

    @pytest.mark.parametrize(
        "name,parameter",
        [("shard-sweep", "num_shards"), ("multi-tenant", "shard_skew")],
    )
    def test_cluster_presets_roundtrip_via_json(self, name, parameter):
        scenario = REGISTRY.get(name)
        assert scenario.sweep is not None
        assert scenario.sweep.parameter == parameter
        assert "cluster" in scenario.tags
        rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert rebuilt == scenario
        assert rebuilt.spec_hash() == scenario.spec_hash()

    def test_sharded_config_roundtrip(self):
        config = SimulationConfig(
            num_shards=4, shard_skew=0.9, partitioner="range"
        )
        assert SimulationConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_shards": 0},
            {"shard_skew": -0.5},
            {"shard_skew": float("nan")},
            {"partitioner": "modulo"},
        ],
    )
    def test_invalid_shard_fields_rejected(self, overrides):
        with pytest.raises(ConfigError):
            SimulationConfig(**overrides)
