"""Tests for SimulationConfig and the figure presets."""

import pytest

from repro.errors import ConfigError
from repro.simulator import SimulationConfig


class TestValidation:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.k == 2
        assert config.memtable_mode == "append"

    def test_update_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(update_fraction=1.5)

    def test_k_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(k=1)

    def test_lanes_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(parallel_lanes=0)

    def test_experiment_driver_defaults(self):
        """Paper-scale drivers default to the fast exact kernels."""
        config = SimulationConfig()
        assert config.backend == "bitset"
        assert config.estimator == "hll"

    def test_backend_and_estimator_aliases_canonicalized(self):
        config = SimulationConfig(backend="bits", estimator="hyperloglog")
        assert config.backend == "bitset"
        assert config.estimator == "hll"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(backend="vibes")

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(estimator="psychic")

    def test_memtable_mode_validated_eagerly(self):
        SimulationConfig(memtable_mode="map")
        with pytest.raises(ConfigError):
            SimulationConfig(memtable_mode="lsm")

    def test_hll_precision_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(hll_precision=3)
        with pytest.raises(ConfigError):
            SimulationConfig(hll_precision=99)

    def test_merge_executor_validated(self):
        assert SimulationConfig().merge_executor == "serial"
        SimulationConfig(merge_executor="thread", merge_workers=4)
        with pytest.raises(ConfigError):
            SimulationConfig(merge_executor="gpu")
        with pytest.raises(ConfigError):
            SimulationConfig(merge_workers=-1)

    def test_describe_mentions_parallel_merges_only(self):
        assert "merge=" not in SimulationConfig().describe()
        text = SimulationConfig(merge_executor="process").describe()
        assert "merge=processxauto" in text
        text = SimulationConfig(merge_executor="thread", merge_workers=2).describe()
        assert "merge=threadx2" in text


class TestPresets:
    def test_figure7_settings(self):
        """§5.2: operationcount 100K, recordcount 1000, memtable 1000."""
        config = SimulationConfig.figure7(0.5)
        assert config.recordcount == 1000
        assert config.operationcount == 100_000
        assert config.memtable_capacity == 1000
        assert config.distribution == "latest"
        assert config.update_fraction == 0.5

    def test_figure8_operationcount_formula(self):
        """§5.3: opcount = memtable * n_sstables - recordcount."""
        config = SimulationConfig.figure8(memtable_capacity=100)
        assert config.operationcount == 100 * 100 - 1000
        assert config.update_fraction == 0.6

    def test_figure8_minimum_scale(self):
        config = SimulationConfig.figure8(memtable_capacity=10)
        assert config.operationcount == 0  # load phase alone fills 100 tables

    def test_figure8_rejects_impossible(self):
        with pytest.raises(ConfigError):
            SimulationConfig.figure8(memtable_capacity=5)

    def test_with_seed(self):
        config = SimulationConfig.figure7(0.5, seed=3)
        other = config.with_seed(9)
        assert other.seed == 9
        assert other.operationcount == config.operationcount


class TestMixFractions:
    def test_defaults_keep_paper_mix_exactly(self):
        """Zero read/scan/delete fractions reproduce the historical mix."""
        config = SimulationConfig.figure7(0.25)
        workload = config.workload_config()
        assert workload.update_proportion == 0.25
        assert workload.insert_proportion == 0.75
        assert workload.read_proportion == 0.0
        assert workload.scan_proportion == 0.0
        assert workload.delete_proportion == 0.0

    def test_full_mix_proportions(self):
        config = SimulationConfig(
            update_fraction=0.5,
            read_fraction=0.4,
            scan_fraction=0.1,
            delete_fraction=0.1,
        )
        workload = config.workload_config()
        assert workload.read_proportion == pytest.approx(0.4)
        assert workload.scan_proportion == pytest.approx(0.1)
        assert workload.delete_proportion == pytest.approx(0.1)
        # remaining 0.4 write slice split by update_fraction
        assert workload.insert_proportion == pytest.approx(0.2)
        assert workload.update_proportion == pytest.approx(0.2)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(read_fraction=1.5)
        with pytest.raises(ConfigError):
            SimulationConfig(delete_fraction=-0.1)

    def test_fractions_must_not_exceed_one(self):
        with pytest.raises(ConfigError):
            SimulationConfig(read_fraction=0.6, scan_fraction=0.3, delete_fraction=0.2)

    def test_exact_full_non_write_mix_survives_float_rounding(self):
        """Sums that are 1.0 up to float error must neither be rejected
        at construction nor crash workload_config with a negative
        write share."""
        config = SimulationConfig(
            read_fraction=0.33, scan_fraction=0.56, delete_fraction=0.11
        )
        workload = config.workload_config()  # sum is 1.0000000000000002
        assert workload.insert_proportion >= 0.0
        config = SimulationConfig(scan_fraction=0.07, delete_fraction=0.93)
        workload = config.workload_config()  # write share is -1.1e-16
        assert workload.insert_proportion == 0.0
        assert workload.update_proportion == 0.0


class TestRoundTrip:
    """The scenario-layer contract: from_dict(to_dict(cfg)) == cfg."""

    CONFIGS = [
        SimulationConfig(),
        SimulationConfig.figure7(0.5, "zipfian", seed=7),
        SimulationConfig.figure8(memtable_capacity=100),
        SimulationConfig(
            update_fraction=0.3,
            read_fraction=0.5,
            scan_fraction=0.1,
            delete_fraction=0.1,
            backend="frozenset",
            estimator="exact",
            data_plane="reference",
            k=4,
        ),
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_roundtrip_identity(self, config):
        data = config.to_dict()
        rebuilt = SimulationConfig.from_dict(data)
        assert rebuilt == config
        assert rebuilt.to_dict() == data

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="vibes"):
            SimulationConfig.from_dict({"vibes": 1})

    def test_from_dict_accepts_partial_dicts(self):
        config = SimulationConfig.from_dict({"operationcount": 42})
        assert config.operationcount == 42
        assert config.recordcount == SimulationConfig().recordcount

    def test_overridden_validates_field_names(self):
        config = SimulationConfig()
        assert config.overridden({}).operationcount == config.operationcount
        assert config.overridden({"k": 4}).k == 4
        with pytest.raises(ConfigError):
            config.overridden({"not_a_field": 1})

    def test_describe_mentions_key_knobs(self):
        config = SimulationConfig(
            update_fraction=0.5, read_fraction=0.25, seed=9, data_plane="fast"
        )
        text = config.describe()
        assert "update=50%" in text
        assert "read=25%" in text
        assert "seed=9" in text
        assert "data_plane=fast" in text


class TestDerivedObjects:
    def test_workload_config(self):
        config = SimulationConfig.figure7(0.25)
        workload = config.workload_config()
        assert workload.update_proportion == 0.25
        assert workload.insert_proportion == 0.75
        assert workload.recordcount == 1000

    def test_timing_model(self):
        config = SimulationConfig(disk_bandwidth=1e6, disk_seek_seconds=0.1)
        model = config.timing_model()
        assert model.transfer_seconds(1_000_000) == pytest.approx(1.1)
