"""Tests for SimulationConfig and the figure presets."""

import pytest

from repro.errors import ConfigError
from repro.simulator import SimulationConfig


class TestValidation:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.k == 2
        assert config.memtable_mode == "append"

    def test_update_fraction_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(update_fraction=1.5)

    def test_k_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(k=1)

    def test_lanes_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(parallel_lanes=0)

    def test_experiment_driver_defaults(self):
        """Paper-scale drivers default to the fast exact kernels."""
        config = SimulationConfig()
        assert config.backend == "bitset"
        assert config.estimator == "hll"

    def test_backend_and_estimator_aliases_canonicalized(self):
        config = SimulationConfig(backend="bits", estimator="hyperloglog")
        assert config.backend == "bitset"
        assert config.estimator == "hll"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(backend="vibes")

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(estimator="psychic")

    def test_hll_precision_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(hll_precision=3)
        with pytest.raises(ConfigError):
            SimulationConfig(hll_precision=99)


class TestPresets:
    def test_figure7_settings(self):
        """§5.2: operationcount 100K, recordcount 1000, memtable 1000."""
        config = SimulationConfig.figure7(0.5)
        assert config.recordcount == 1000
        assert config.operationcount == 100_000
        assert config.memtable_capacity == 1000
        assert config.distribution == "latest"
        assert config.update_fraction == 0.5

    def test_figure8_operationcount_formula(self):
        """§5.3: opcount = memtable * n_sstables - recordcount."""
        config = SimulationConfig.figure8(memtable_capacity=100)
        assert config.operationcount == 100 * 100 - 1000
        assert config.update_fraction == 0.6

    def test_figure8_minimum_scale(self):
        config = SimulationConfig.figure8(memtable_capacity=10)
        assert config.operationcount == 0  # load phase alone fills 100 tables

    def test_figure8_rejects_impossible(self):
        with pytest.raises(ConfigError):
            SimulationConfig.figure8(memtable_capacity=5)

    def test_with_seed(self):
        config = SimulationConfig.figure7(0.5, seed=3)
        other = config.with_seed(9)
        assert other.seed == 9
        assert other.operationcount == config.operationcount


class TestDerivedObjects:
    def test_workload_config(self):
        config = SimulationConfig.figure7(0.25)
        workload = config.workload_config()
        assert workload.update_proportion == 0.25
        assert workload.insert_proportion == 0.75
        assert workload.recordcount == 1000

    def test_timing_model(self):
        config = SimulationConfig(disk_bandwidth=1e6, disk_seek_seconds=0.1)
        model = config.timing_model()
        assert model.transfer_seconds(1_000_000) == pytest.approx(1.1)
