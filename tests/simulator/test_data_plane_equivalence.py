"""Differential harness: the batched data plane equals the reference.

The fast plane (columnar phase 1 + columnar merge kernel) must produce
**bit-identical** sstables, schedules and metrics to the reference plane
(operation-at-a-time engine loop + heap merge) on every key
distribution, with and without numpy, and sweep results must not depend
on the number of worker processes.  These tests are the contract that
lets the figure goldens stay byte-identical while the pipeline gets
faster.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.simulator.phase1 as phase1_module
import repro.ycsb.distributions as distributions_module
import repro.ycsb.workload as workload_module
from repro.errors import ConfigError
from repro.lsm.engine import EngineConfig, LSMEngine
from repro.simulator import (
    SimulationConfig,
    fast_plane_eligible,
    generate_sstables,
    generate_sstables_fast,
    generate_sstables_reference,
    run_strategy,
    sweep_update_fraction,
)
from repro.ycsb.workload import CoreWorkload, WorkloadConfig

DISTRIBUTIONS = ("uniform", "zipfian", "scrambled_zipfian", "latest")


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        recordcount=250,
        operationcount=2500,
        memtable_capacity=200,
        distribution="latest",
        update_fraction=0.5,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def assert_tables_identical(result_a, result_b):
    assert result_a.total_operations == result_b.total_operations
    assert result_a.total_entries == result_b.total_entries
    assert len(result_a.tables) == len(result_b.tables)
    for table_a, table_b in zip(result_a.tables, result_b.tables):
        assert table_a.table_id == table_b.table_id
        assert table_a.records == table_b.records
        assert table_a.size_bytes == table_b.size_bytes
        assert table_a.key_set == table_b.key_set
        assert (table_a.min_seqno, table_a.max_seqno) == (
            table_b.min_seqno,
            table_b.max_seqno,
        )


@pytest.fixture
def pure_data_plane(monkeypatch):
    """Force every batched kernel onto its numpy-less fallback."""
    monkeypatch.setattr(distributions_module, "_np", None)
    monkeypatch.setattr(workload_module, "_np", None)
    monkeypatch.setattr(phase1_module, "_np", None)


class TestPhase1Equivalence:
    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    @pytest.mark.parametrize("update_fraction", (0.0, 0.6, 1.0))
    def test_fast_matches_reference(self, distribution, update_fraction):
        config = small_config(
            distribution=distribution, update_fraction=update_fraction
        )
        assert_tables_identical(
            generate_sstables_reference(config), generate_sstables_fast(config)
        )

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_pure_fast_matches_reference(self, pure_data_plane, distribution):
        config = small_config(distribution=distribution)
        assert_tables_identical(
            generate_sstables_reference(config), generate_sstables_fast(config)
        )

    def test_auto_plane_uses_fast_pipeline(self):
        config = small_config()
        assert config.data_plane == "auto"
        assert fast_plane_eligible(config)
        fast = generate_sstables(config)
        assert fast.plane_used == "fast"
        if phase1_module._np is not None:
            # Column-backed tables never materialized records here.
            assert all(table.columns() is not None for table in fast.tables)
            assert all("records" not in vars(table) for table in fast.tables)
        assert_tables_identical(generate_sstables_reference(config), fast)

    MIXES = {
        "writes-only": {},
        "read-mix": {"read_fraction": 0.6, "update_fraction": 0.4},
        "scan-mix": {"scan_fraction": 0.3, "read_fraction": 0.1},
        "delete-mix": {"delete_fraction": 0.3, "update_fraction": 0.4},
    }

    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("memtable_mode", ("append", "map"))
    def test_mode_and_mix_grid_identical(self, memtable_mode, mix):
        """Map mode and read/scan/delete mixes all run columnar now."""
        config = small_config(memtable_mode=memtable_mode, **self.MIXES[mix])
        assert fast_plane_eligible(config)
        fast = generate_sstables_fast(config)
        assert fast.plane_used == "fast"
        assert_tables_identical(generate_sstables_reference(config), fast)

    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize("memtable_mode", ("append", "map"))
    def test_pure_mode_and_mix_grid_identical(
        self, pure_data_plane, memtable_mode, mix
    ):
        config = small_config(memtable_mode=memtable_mode, **self.MIXES[mix])
        assert_tables_identical(
            generate_sstables_reference(config), generate_sstables_fast(config)
        )

    @pytest.mark.parametrize("distribution", DISTRIBUTIONS)
    def test_map_mode_matches_reference_per_distribution(self, distribution):
        config = small_config(memtable_mode="map", distribution=distribution)
        assert_tables_identical(
            generate_sstables_reference(config), generate_sstables_fast(config)
        )

    def test_map_mode_slab_kernel_matches_pure_boundaries(self):
        """The chunked distinct-count kernel == the memtable reference."""
        np = pytest.importorskip(
            "numpy", reason="exercises the columnar slab cutter", exc_type=ImportError
        )
        from repro.lsm.memtable import distinct_capacity_boundaries

        rng = __import__("random").Random(3)
        for capacity in (1, 2, 7, 50, 200):
            for spread in (5, 40, 1000):
                keys = [rng.randrange(spread) for _ in range(3000)]
                assert phase1_module._map_mode_slabs_columnar(
                    np.asarray(keys, dtype=np.int64), capacity
                ) == distinct_capacity_boundaries(keys, capacity), (
                    capacity,
                    spread,
                )

    def test_fast_plane_requires_known_memtable_mode(self):
        with pytest.raises(ConfigError):
            small_config(memtable_mode="lsm")

    def test_reference_plane_forced(self):
        config = small_config(data_plane="reference")
        result = generate_sstables(config)
        assert result.plane_used == "reference"
        # Reference tables are record-backed from construction.
        assert all("records" in vars(table) for table in result.tables)

    def test_fast_plane_with_deletes(self):
        """Tombstone columns survive the slab pipeline bit-identically."""
        np = pytest.importorskip(
            "numpy", reason="exercises the columnar slab kernel", exc_type=ImportError
        )
        workload_config = WorkloadConfig(
            recordcount=150,
            operationcount=1800,
            insert_proportion=0.3,
            update_proportion=0.5,
            delete_proportion=0.2,
            distribution="zipfian",
            seed=11,
        )
        engine = LSMEngine(
            EngineConfig(
                memtable_capacity=200,
                memtable_mode="append",
                default_value_size=100,
                use_wal=False,
            )
        )
        for operation in CoreWorkload(workload_config).all_operations():
            engine.apply(operation)
        engine.flush()

        config = small_config(recordcount=150, operationcount=1800)
        keynums, tombstones = CoreWorkload(workload_config).write_stream_columns()
        tables = phase1_module._flush_slabs_columnar(
            np.asarray(keynums, dtype=np.int64),
            tombstones,
            phase1_module._append_mode_slabs(len(keynums), 200),
            replace(config, memtable_capacity=200),
        )
        assert len(tables) == len(engine.sstables)
        for fast_table, reference_table in zip(tables, engine.sstables):
            assert fast_table.records == reference_table.records
            assert fast_table.live_key_count == reference_table.live_key_count


class TestPhase2Equivalence:
    @pytest.fixture(scope="class")
    def planes(self):
        config = small_config()
        return (
            config,
            generate_sstables_reference(config),
            generate_sstables_fast(config),
        )

    @pytest.mark.parametrize("label", ("SI", "SO", "BT(I)", "RANDOM"))
    def test_strategy_metrics_identical(self, planes, label):
        config, reference, fast = planes
        result_reference = run_strategy(
            reference.tables, label, replace(config, data_plane="reference")
        )
        result_fast = run_strategy(fast.tables, label, config)
        assert result_reference.cost_actual == result_fast.cost_actual
        assert result_reference.cost_simplified == result_fast.cost_simplified
        assert result_reference.bytes_read == result_fast.bytes_read
        assert result_reference.bytes_written == result_fast.bytes_written
        assert result_reference.simulated_seconds == result_fast.simulated_seconds
        assert result_reference.n_merges == result_fast.n_merges

    def test_merge_kernels_identical_on_fast_tables(self, planes):
        pytest.importorskip(
            "numpy", reason="forces the columnar merge kernel", exc_type=ImportError
        )
        from repro.lsm.sstable import merge_sstables

        _, _, fast = planes
        columnar = merge_sstables(
            fast.tables, 10_000, drop_tombstones=True, kernel="columnar"
        )
        heap = merge_sstables(
            fast.tables, 10_000, drop_tombstones=True, kernel="heap"
        )
        assert columnar.records == heap.records
        assert columnar.size_bytes == heap.size_bytes


class TestSweepJobsIndependence:
    @staticmethod
    def deterministic_fields(sweep):
        return [
            (
                point.x,
                label,
                agg.cost_actual_mean,
                agg.cost_actual_std,
                agg.cost_simplified_mean,
                agg.lopt_entries_mean,
                agg.runs,
            )
            for point in sweep.points
            for label, agg in point.per_strategy.items()
        ]

    def test_results_independent_of_jobs(self):
        config = small_config(operationcount=1500, recordcount=200)
        serial = sweep_update_fraction(
            config, (0.0, 1.0), ("SI", "RANDOM"), runs=2, jobs=1
        )
        parallel = sweep_update_fraction(
            config, (0.0, 1.0), ("SI", "RANDOM"), runs=2, jobs=3
        )
        assert self.deterministic_fields(serial) == self.deterministic_fields(
            parallel
        )

    def test_invalid_jobs_rejected(self):
        from repro.simulator import run_comparison

        with pytest.raises(ConfigError):
            run_comparison(small_config(), ("SI",), runs=1, jobs=0)
