"""Determinism tests: a config fully determines every simulator output."""

from repro.simulator import SimulationConfig, generate_sstables, run_strategy


def config(**overrides):
    defaults = dict(
        recordcount=200,
        operationcount=1500,
        memtable_capacity=150,
        distribution="zipfian",
        update_fraction=0.4,
        seed=99,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestDeterminism:
    def test_phase2_idempotent(self):
        """Same tables + same strategy => identical metrics (costs and
        simulated time; wall time and overhead vary with the clock)."""
        tables = generate_sstables(config()).tables
        first = run_strategy(tables, "SO", config())
        second = run_strategy(tables, "SO", config())
        assert first.cost_actual == second.cost_actual
        assert first.cost_simplified == second.cost_simplified
        assert first.simulated_seconds == second.simulated_seconds
        assert first.bytes_read == second.bytes_read

    def test_random_strategy_seeded_by_config(self):
        tables = generate_sstables(config()).tables
        first = run_strategy(tables, "RANDOM", config())
        second = run_strategy(tables, "RANDOM", config())
        assert first.cost_actual == second.cost_actual

    def test_random_strategy_varies_with_seed(self):
        tables = generate_sstables(config()).tables
        costs = {
            run_strategy(tables, "RANDOM", config(), seed=s).cost_actual
            for s in range(5)
        }
        assert len(costs) > 1

    def test_full_pipeline_reproducible(self):
        first = run_strategy(
            generate_sstables(config()).tables, "BT(I)", config()
        )
        second = run_strategy(
            generate_sstables(config()).tables, "BT(I)", config()
        )
        assert first.cost_actual == second.cost_actual
        assert first.n_tables == second.n_tables

    def test_hll_estimates_reproducible(self):
        """SO's HLL decisions are hash-seeded, not process-seeded."""
        tables = generate_sstables(config()).tables
        costs = {
            run_strategy(tables, "SO", config()).cost_actual for _ in range(3)
        }
        assert len(costs) == 1
