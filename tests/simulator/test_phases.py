"""Tests for simulator phase 1 (sstable generation) and phase 2 (strategies).

These use reduced workload sizes; the full paper-scale settings run in
the benchmark suite.
"""

import pytest

from repro.errors import CompactionError
from repro.simulator import (
    PAPER_STRATEGIES,
    SimulationConfig,
    build_strategy,
    generate_sstables,
    run_strategy,
    strategy_labels,
)


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        recordcount=300,
        operationcount=3000,
        memtable_capacity=300,
        distribution="latest",
        update_fraction=0.5,
        seed=1,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestPhase1:
    def test_table_count_matches_flush_arithmetic(self):
        """(recordcount + operationcount) / memtable ops per flush."""
        config = small_config()
        result = generate_sstables(config)
        assert result.n_tables == (300 + 3000) // 300
        assert result.total_operations == 3300

    def test_append_mode_tables_vary_in_size(self):
        """§5.1: dedup at flush => tables smaller than capacity."""
        config = small_config(update_fraction=1.0)
        result = generate_sstables(config)
        sizes = {t.entry_count for t in result.tables}
        assert all(t.entry_count <= 300 for t in result.tables)
        assert any(t.entry_count < 300 for t in result.tables)

    def test_insert_only_tables_are_full(self):
        """With no updates every operation is a distinct key."""
        config = small_config(update_fraction=0.0)
        result = generate_sstables(config)
        assert all(t.entry_count == 300 for t in result.tables)

    def test_total_entries_is_lopt(self):
        config = small_config()
        result = generate_sstables(config)
        assert result.total_entries == sum(t.entry_count for t in result.tables)

    def test_reproducible(self):
        config = small_config()
        a = generate_sstables(config)
        b = generate_sstables(config)
        assert [t.key_set for t in a.tables] == [t.key_set for t in b.tables]

    def test_different_seeds_differ(self):
        a = generate_sstables(small_config(seed=1))
        b = generate_sstables(small_config(seed=2))
        assert [t.key_set for t in a.tables] != [t.key_set for t in b.tables]

    def test_map_mode_dedups_before_capacity(self):
        append = generate_sstables(small_config(update_fraction=1.0))
        mapped = generate_sstables(
            small_config(update_fraction=1.0, memtable_mode="map")
        )
        # map mode needs more ops to fill a memtable, so fewer tables
        assert mapped.n_tables <= append.n_tables


class TestPhase2:
    @pytest.fixture(scope="class")
    def phase1(self):
        return generate_sstables(small_config())

    def test_all_paper_strategies_run(self, phase1):
        config = small_config()
        for label in strategy_labels():
            result = run_strategy(phase1.tables, label, config)
            assert result.strategy == label
            assert result.n_merges == phase1.n_tables - 1
            assert result.cost_actual > result.lopt_entries

    def test_cost_ge_lopt(self, phase1):
        config = small_config()
        result = run_strategy(phase1.tables, "SI", config)
        assert result.cost_over_lopt >= 1.0

    def test_bt_parallel_beats_si_time(self, phase1):
        config = small_config()
        si = run_strategy(phase1.tables, "SI", config)
        bt = run_strategy(phase1.tables, "BT(I)", config)
        assert bt.total_simulated_seconds < si.total_simulated_seconds

    def test_so_overhead_exceeds_si(self, phase1):
        config = small_config()
        si = run_strategy(phase1.tables, "SI", config)
        so = run_strategy(phase1.tables, "SO", config)
        assert so.strategy_overhead_seconds > si.strategy_overhead_seconds

    def test_random_not_better_than_si(self, phase1):
        config = small_config()
        si = run_strategy(phase1.tables, "SI", config)
        rnd = run_strategy(phase1.tables, "RANDOM", config)
        assert rnd.cost_actual >= si.cost_actual

    def test_unknown_label(self, phase1):
        with pytest.raises(CompactionError):
            run_strategy(phase1.tables, "FASTEST", small_config())

    def test_empty_tables_rejected(self):
        with pytest.raises(CompactionError):
            run_strategy([], "SI", small_config())

    def test_build_strategy_lanes(self):
        config = small_config(parallel_lanes=4)
        assert build_strategy("BT(I)", config).lanes == 4
        assert build_strategy("SI", config).lanes == 1

    def test_paper_strategy_table_complete(self):
        for label in strategy_labels():
            assert label in PAPER_STRATEGIES
