"""Differential harness for the serving read path.

The batched read kernel (columnar gets + windowed scan merges) must
produce **identical** counts to the scalar reference (the real engine's
``get``/``scan``) on every mix and distribution, with and without
numpy; collecting read ops must not move the write stream by a byte;
and the read metrics must surface through ``run_strategy``,
``run_comparison`` and the report renderer.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.simulator.read_path as read_path_module
from repro.errors import ConfigError
from repro.simulator import (
    SimulationConfig,
    run_comparison,
    run_strategy,
    serve_reads,
)
from repro.simulator.phase1 import (
    generate_sstables_fast,
    generate_sstables_reference,
)
from repro.scenarios.runner import render_comparison_table

COUNTER_FIELDS = (
    "reads",
    "hits",
    "misses",
    "tables_probed",
    "bloom_skips",
    "bloom_false_positives",
    "read_bytes",
    "scans",
    "scan_tables_probed",
    "scan_tables_pruned",
    "scan_records_scanned",
    "scan_records_returned",
)

MIXES = {
    "read-heavy": {"read_fraction": 0.6, "update_fraction": 0.4},
    "scan-heavy": {"scan_fraction": 0.4, "read_fraction": 0.1},
    "churny": {
        "read_fraction": 0.3,
        "scan_fraction": 0.2,
        "delete_fraction": 0.2,
        "update_fraction": 0.5,
    },
}


def read_config(**overrides) -> SimulationConfig:
    defaults = dict(
        recordcount=250,
        operationcount=2500,
        memtable_capacity=200,
        distribution="zipfian",
        update_fraction=0.5,
        read_fraction=0.4,
        scan_fraction=0.1,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def assert_counts_identical(result_a, result_b):
    for field in COUNTER_FIELDS:
        assert getattr(result_a, field) == getattr(result_b, field), field


class TestKernelEquivalence:
    @pytest.mark.parametrize("mix", sorted(MIXES))
    @pytest.mark.parametrize(
        "distribution", ("uniform", "zipfian", "latest")
    )
    def test_batched_matches_scalar(self, mix, distribution):
        pytest.importorskip(
            "numpy", reason="exercises the batched kernel", exc_type=ImportError
        )
        config = read_config(distribution=distribution, **MIXES[mix])
        phase1 = generate_sstables_fast(config)
        assert phase1.read_ops is not None and phase1.read_ops.has_ops
        batched = serve_reads(phase1.tables, phase1.read_ops, kernel="batched")
        scalar = serve_reads(phase1.tables, phase1.read_ops, kernel="scalar")
        assert batched.kernel_used == "batched"
        assert scalar.kernel_used == "scalar"
        assert_counts_identical(batched, scalar)

    def test_batched_matches_scalar_on_compacted_output(self):
        """Serving against a strategy's output tables, not just phase 1's."""
        pytest.importorskip(
            "numpy", reason="exercises the batched kernel", exc_type=ImportError
        )
        from repro.simulator.phase2 import build_strategy
        from repro.lsm.disk import SimulatedDisk

        config = read_config(operationcount=4000, **MIXES["churny"])
        phase1 = generate_sstables_fast(config)
        strategy = build_strategy("LEVELED", config)
        result = strategy.compact(
            phase1.tables, SimulatedDisk(config.timing_model()), 10_000_000
        )
        batched = serve_reads(
            result.output_tables, phase1.read_ops, kernel="batched"
        )
        scalar = serve_reads(
            result.output_tables, phase1.read_ops, kernel="scalar"
        )
        assert_counts_identical(batched, scalar)

    def test_auto_prefers_batched_and_falls_back(self, monkeypatch):
        config = read_config()
        phase1 = generate_sstables_fast(config)
        if read_path_module._np is not None:
            assert (
                serve_reads(phase1.tables, phase1.read_ops).kernel_used
                == "batched"
            )
        monkeypatch.setattr(read_path_module, "_np", None)
        served = serve_reads(phase1.tables, phase1.read_ops, kernel="auto")
        assert served.kernel_used == "scalar"

    def test_batched_kernel_requires_numpy(self, monkeypatch):
        config = read_config()
        phase1 = generate_sstables_fast(config)
        monkeypatch.setattr(read_path_module, "_np", None)
        with pytest.raises(ConfigError):
            serve_reads(phase1.tables, phase1.read_ops, kernel="batched")

    def test_unknown_kernel_rejected(self):
        config = read_config()
        phase1 = generate_sstables_fast(config)
        with pytest.raises(ConfigError):
            serve_reads(phase1.tables, phase1.read_ops, kernel="simd")

    def test_tombstones_resolve_to_misses(self):
        """A read landing on a tombstone is a probe + a miss, not a hit."""
        from repro.lsm.sstable import SSTable
        from repro.lsm.record import Record
        from repro.ycsb.workload import ReadOpColumns

        old = SSTable(0, [Record.put(key, key + 1) for key in range(10)])
        new = SSTable(1, [Record.delete(3, 100), Record.put(7, 101)])
        ops = ReadOpColumns(
            read_keynums=[3, 7, 42], scan_keynums=[0], scan_lengths=[10]
        )
        for kernel in ("batched", "scalar"):
            if kernel == "batched" and read_path_module._np is None:
                continue
            served = serve_reads([old, new], ops, kernel=kernel)
            assert served.hits == 1  # key 7, from the newer table
            assert served.misses == 2  # tombstoned 3 + absent 42
            # The scan sees 9 live keys (3 is shadowed).
            assert served.scan_records_returned == 9


class TestReadOpCollection:
    def test_planes_collect_identical_read_ops(self):
        config = read_config(**MIXES["churny"])
        fast = generate_sstables_fast(config)
        reference = generate_sstables_reference(config)
        assert fast.read_ops.read_keynums == reference.read_ops.read_keynums
        assert fast.read_ops.scan_keynums == reference.read_ops.scan_keynums
        assert fast.read_ops.scan_lengths == reference.read_ops.scan_lengths

    def test_collection_does_not_move_the_write_stream(self):
        from repro.ycsb.workload import CoreWorkload

        config = read_config(**MIXES["scan-heavy"])
        workload_config = config.workload_config()
        dropped = CoreWorkload(workload_config).op_stream_columns()
        collected = CoreWorkload(workload_config).op_stream_columns(
            include_read_ops=True
        )
        assert dropped.read_ops is None
        assert collected.read_ops is not None and collected.read_ops.has_ops
        assert list(dropped.write_keynums) == list(collected.write_keynums)
        assert dropped.tombstone_positions == collected.tombstone_positions
        assert dropped.op_codes == collected.op_codes

    def test_pure_plane_collects_identical_read_ops(self, monkeypatch):
        import repro.ycsb.distributions as distributions_module
        import repro.ycsb.workload as workload_module
        import repro.simulator.phase1 as phase1_module

        config = read_config(**MIXES["read-heavy"])
        with_numpy = generate_sstables_fast(config)
        monkeypatch.setattr(distributions_module, "_np", None)
        monkeypatch.setattr(workload_module, "_np", None)
        monkeypatch.setattr(phase1_module, "_np", None)
        pure = generate_sstables_fast(config)
        assert list(pure.read_ops.read_keynums) == list(
            with_numpy.read_ops.read_keynums
        )
        assert list(pure.read_ops.scan_keynums) == list(
            with_numpy.read_ops.scan_keynums
        )
        assert pure.read_ops.scan_lengths == with_numpy.read_ops.scan_lengths

    def test_write_only_mix_collects_nothing(self):
        config = read_config(read_fraction=0.0, scan_fraction=0.0)
        assert generate_sstables_fast(config).read_ops is None
        assert generate_sstables_reference(config).read_ops is None


class TestStrategyMetrics:
    def test_run_strategy_serves_reads(self):
        config = read_config()
        phase1 = generate_sstables_fast(config)
        result = run_strategy(
            phase1.tables, "SI", config, read_ops=phase1.read_ops
        )
        assert result.reads == phase1.read_ops.read_count
        assert result.scans > 0
        assert result.read_hits + result.read_misses == result.reads
        assert result.read_bytes > 0
        assert result.read_amplification > 0
        assert 0.0 <= result.bloom_fp_rate <= 1.0

    def test_run_strategy_without_read_ops_reports_zeros(self):
        config = read_config(read_fraction=0.0, scan_fraction=0.0)
        phase1 = generate_sstables_fast(config)
        result = run_strategy(phase1.tables, "SI", config)
        assert result.reads == 0
        assert result.scans == 0
        assert result.read_amplification == 0.0

    def test_reference_plane_serves_identically(self):
        config = read_config(**MIXES["read-heavy"])
        auto = run_comparison(config, ("SI",), runs=1)
        reference = run_comparison(
            replace(config, data_plane="reference"), ("SI",), runs=1
        )
        agg_auto = auto.per_strategy["SI"]
        agg_reference = reference.per_strategy["SI"]
        for field in (
            "reads_mean",
            "scans_mean",
            "read_amplification_mean",
            "bloom_fp_rate_mean",
            "read_bytes_mean",
            "scan_records_scanned_mean",
        ):
            assert getattr(agg_auto, field) == getattr(agg_reference, field)
        assert agg_auto.reads_mean > 0

    def test_render_adds_read_columns_only_when_served(self):
        read_mix = read_config()
        served = run_comparison(read_mix, ("SI", "RANDOM"), runs=1)
        report = render_comparison_table(read_mix, served, ("SI", "RANDOM"))
        assert "read amp" in report and "bloom FP%" in report

        write_only = read_config(read_fraction=0.0, scan_fraction=0.0)
        unserved = run_comparison(write_only, ("SI",), runs=1)
        report = render_comparison_table(write_only, unserved, ("SI",))
        assert "read amp" not in report
