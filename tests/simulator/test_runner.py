"""Tests for run aggregation and the figure sweeps (reduced scale)."""

import pytest

from repro.simulator import (
    SimulationConfig,
    StrategyResult,
    aggregate,
    run_comparison,
    sweep_hll_precision,
    sweep_k,
    sweep_memtable_capacity,
    sweep_operationcount,
    sweep_update_fraction,
)


def tiny_config(**overrides) -> SimulationConfig:
    defaults = dict(
        recordcount=200,
        operationcount=1600,
        memtable_capacity=200,
        distribution="latest",
        update_fraction=0.5,
        seed=0,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def make_result(strategy="SI", cost=100, seconds=1.0) -> StrategyResult:
    return StrategyResult(
        strategy=strategy,
        n_tables=10,
        n_merges=9,
        cost_actual=cost,
        cost_simplified=cost // 2,
        lopt_entries=50,
        bytes_read=1000,
        bytes_written=900,
        io_seconds=seconds,
        simulated_seconds=seconds,
        strategy_overhead_seconds=0.1,
        wall_seconds=seconds,
    )


class TestAggregation:
    def test_mean_and_std(self):
        agg = aggregate([make_result(cost=100), make_result(cost=200)])
        assert agg.cost_actual_mean == 150
        assert agg.cost_actual_std == pytest.approx(70.71, abs=0.01)
        assert agg.runs == 2

    def test_single_run_std_zero(self):
        agg = aggregate([make_result()])
        assert agg.cost_actual_std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_rejects_mixed_strategies(self):
        with pytest.raises(ValueError):
            aggregate([make_result("SI"), make_result("SO")])

    def test_cost_over_lopt(self):
        agg = aggregate([make_result(cost=100)])
        assert agg.cost_over_lopt == pytest.approx(2.0)


class TestComparison:
    def test_runs_and_strategies(self):
        comparison = run_comparison(tiny_config(), labels=("SI", "RANDOM"), runs=2)
        assert comparison.runs == 2
        assert set(comparison.per_strategy) == {"SI", "RANDOM"}
        for agg in comparison.per_strategy.values():
            assert agg.runs == 2
            assert agg.cost_actual_mean > 0

    def test_default_labels_are_paper_set(self):
        comparison = run_comparison(tiny_config(), runs=1)
        assert set(comparison.per_strategy) == {"SI", "SO", "BT(I)", "BT(O)", "RANDOM"}


class TestSweeps:
    def test_update_fraction_sweep_shape(self):
        sweep = sweep_update_fraction(
            tiny_config(), (0.0, 1.0), labels=("SI", "RANDOM"), runs=1
        )
        assert sweep.parameter == "update_percentage"
        assert [point.x for point in sweep.points] == [0.0, 100.0]
        series = sweep.series("SI")
        assert len(series) == 2

    def test_cost_decreases_with_updates(self):
        """The paper's headline Figure 7 trend at small scale."""
        sweep = sweep_update_fraction(tiny_config(), (0.0, 1.0), ("SI",), runs=1)
        insert_heavy = sweep.points[0].per_strategy["SI"].cost_actual_mean
        update_heavy = sweep.points[1].per_strategy["SI"].cost_actual_mean
        assert update_heavy < insert_heavy

    def test_memtable_sweep_uses_figure8_configs(self):
        sweep = sweep_memtable_capacity((10, 20), labels=("BT(I)",), runs=1)
        assert [point.x for point in sweep.points] == [10.0, 20.0]
        for point in sweep.points:
            assert point.config.update_fraction == 0.6
        # larger memtables, same table count => strictly larger LOPT
        lopts = [p.per_strategy["BT(I)"].lopt_entries_mean for p in sweep.points]
        assert lopts[1] > lopts[0]

    def test_operationcount_sweep(self):
        sweep = sweep_operationcount(
            tiny_config(), (800, 1600), labels=("SI",), runs=1
        )
        costs = [p.per_strategy["SI"].cost_actual_mean for p in sweep.points]
        assert costs[1] > costs[0]

    def test_series_accessor_metric(self):
        sweep = sweep_update_fraction(tiny_config(), (0.5,), ("SI",), runs=1)
        series = sweep.series("SI", metric="simulated_seconds_mean")
        assert len(series) == 1
        assert series[0][1] > 0

    def test_k_sweep_shape_and_monotonicity(self):
        sweep = sweep_k(tiny_config(), (2, 4), labels=("SI",), runs=1)
        assert sweep.parameter == "k"
        assert [point.x for point in sweep.points] == [2.0, 4.0]
        assert [point.config.k for point in sweep.points] == [2, 4]
        # A larger fan-in can only reduce re-merge work for SI.
        costs = [p.per_strategy["SI"].cost_actual_mean for p in sweep.points]
        assert costs[1] <= costs[0]

    def test_hll_precision_sweep_defaults_to_estimator_strategies(self):
        sweep = sweep_hll_precision(tiny_config(), (10, 12), runs=1)
        assert sweep.parameter == "hll_precision"
        assert sweep.labels == ("SO", "BT(O)")
        assert [point.config.hll_precision for point in sweep.points] == [10, 12]
        for point in sweep.points:
            for agg in point.per_strategy.values():
                assert agg.cost_actual_mean > 0
