"""storage="disk" spills phase-1 tables through the on-disk format.

Every table takes a full encode → file → decode round trip, so a disk
run proves the durable format preserves exactly what the simulator
measures: keys, seqnos, bloom filters and HLL sketches.  Results must be
byte-identical to the in-memory run.
"""

import pytest

from repro.errors import ConfigError
from repro.simulator import SimulationConfig, generate_sstables, run_strategy


def config(**overrides):
    defaults = dict(
        recordcount=150,
        operationcount=900,
        memtable_capacity=100,
        distribution="zipfian",
        update_fraction=0.4,
        seed=7,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestStorageConfig:
    def test_default_is_memory(self):
        assert config().storage == "memory"

    def test_invalid_storage_rejected(self):
        with pytest.raises(ConfigError):
            config(storage="tape")

    def test_describe_mentions_disk(self):
        assert "storage=disk" in config(storage="disk").describe()
        assert "storage" not in config().describe()


class TestDiskStorageEquivalence:
    def test_phase1_tables_identical_after_disk_spill(self):
        memory = generate_sstables(config()).tables
        disk = generate_sstables(config(storage="disk")).tables
        assert len(memory) == len(disk)
        for a, b in zip(memory, disk):
            assert list(a) == list(b)
            assert a.min_key == b.min_key and a.max_key == b.max_key

    @pytest.mark.parametrize("policy", ["SO", "BT(I)", "SI"])
    def test_full_run_metrics_identical(self, policy):
        memory_result = run_strategy(
            generate_sstables(config()).tables, policy, config()
        )
        disk_config = config(storage="disk")
        disk_result = run_strategy(
            generate_sstables(disk_config).tables, policy, disk_config
        )
        assert disk_result.cost_actual == memory_result.cost_actual
        assert disk_result.cost_simplified == memory_result.cost_simplified
        assert disk_result.simulated_seconds == memory_result.simulated_seconds
        assert disk_result.bytes_read == memory_result.bytes_read
        assert disk_result.n_tables == memory_result.n_tables
