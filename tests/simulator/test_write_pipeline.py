"""Write-pipeline plumbing: config, phase 1 equivalence, CLI, manifests.

The engine-level differential tests live in tests/lsm/test_pipeline.py;
this file pins the simulator threading — ``write_pipeline`` produces
byte-identical tables through both data planes, the config validates
its knobs, the CLI flags reach the config, and the ingest metrics land
in report columns and manifest cells.
"""

from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.cli import main
from repro.scenarios import ResultsStore
from repro.simulator.config import SimulationConfig
from repro.simulator.metrics import StrategyResult, aggregate
from repro.simulator.phase1 import (
    generate_sstables_fast,
    generate_sstables_reference,
)

TINY = dict(recordcount=120, operationcount=1500, memtable_capacity=100, seed=3)


def _result(**kwargs):
    base = dict(
        strategy="SI", n_tables=4, n_merges=1, cost_actual=10,
        cost_simplified=10, lopt_entries=10, bytes_read=0, bytes_written=0,
        io_seconds=0.0, simulated_seconds=0.0,
        strategy_overhead_seconds=0.0, wall_seconds=0.0,
    )
    base.update(kwargs)
    return StrategyResult(**base)


class TestConfigValidation:
    def test_defaults_off(self):
        config = SimulationConfig(**TINY)
        assert config.write_pipeline is False
        assert config.max_immutable_memtables == 2
        assert config.flush_workers == 0
        assert config.wal_sync_every == 1

    def test_bad_max_immutable_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(**TINY, max_immutable_memtables=0)

    def test_bad_flush_workers_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(**TINY, flush_workers=-1)

    def test_bad_wal_sync_every_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(**TINY, wal_sync_every=0)

    def test_describe_shows_pipeline_and_sync(self):
        config = SimulationConfig(
            **TINY, write_pipeline=True, max_immutable_memtables=3,
            flush_workers=2, wal_sync_every=8,
        )
        described = config.describe()
        assert "pipeline=imm3x2" in described
        assert "wal_sync_every=8" in described
        serial = SimulationConfig(**TINY)
        assert "pipeline" not in serial.describe()
        assert "wal_sync_every" not in serial.describe()


class TestPhase1Equivalence:
    @pytest.mark.parametrize("mode", ["append", "map"])
    @pytest.mark.parametrize(
        "plane", [generate_sstables_fast, generate_sstables_reference]
    )
    def test_pipelined_tables_byte_identical(self, mode, plane):
        config = SimulationConfig(**TINY, memtable_mode=mode)
        serial = plane(config)
        piped = plane(
            replace(
                config,
                write_pipeline=True,
                flush_workers=3,
                max_immutable_memtables=2,
            )
        )
        assert [t.table_id for t in serial.tables] == [
            t.table_id for t in piped.tables
        ]
        for a, b in zip(serial.tables, piped.tables):
            assert a.records == b.records
        assert piped.write_pipeline is True
        assert serial.write_pipeline is False

    def test_ingest_metrics_populated(self):
        config = SimulationConfig(
            **TINY, write_pipeline=True, flush_workers=2,
            max_immutable_memtables=1,
        )
        result = generate_sstables_fast(config)
        assert result.ingest_wall_seconds > 0.0
        assert 0.0 <= result.flush_overlap_fraction <= 1.0
        serial = generate_sstables_fast(SimulationConfig(**TINY))
        assert serial.ingest_wall_seconds > 0.0  # measured for serial too
        assert serial.write_stall_count == 0
        assert serial.flush_overlap_fraction == 0.0


class TestAggregation:
    def test_aggregate_carries_ingest_fields(self):
        agg = aggregate(
            [
                _result(
                    write_pipeline=True, ingest_wall_seconds=1.0,
                    write_stall_count=4, flush_overlap_fraction=0.5,
                ),
                _result(
                    write_pipeline=True, ingest_wall_seconds=3.0,
                    write_stall_count=6, flush_overlap_fraction=0.7,
                ),
            ]
        )
        assert agg.write_pipeline is True
        assert agg.ingest_wall_seconds_mean == 2.0
        assert agg.write_stall_count_mean == 5.0
        assert agg.flush_overlap_fraction_mean == pytest.approx(0.6)


TINY_SETS = [
    "--set", "recordcount=120",
    "--set", "operationcount=1500",
    "--set", "memtable_capacity=100",
]


class TestCli:
    def test_flags_reach_config_and_manifest(self, capsys, tmp_path):
        store = tmp_path / "runs"
        code = main(
            [
                "run", "churn", "--runs", "1", "--store", str(store),
                "--write-pipeline", "--flush-workers", "2",
                "--max-immutable-memtables", "3",
            ]
            + TINY_SETS
        )
        assert code == 0
        out = capsys.readouterr().out
        # Report columns appear only for pipelined runs.
        assert "ingest s" in out and "stalls" in out and "overlap%" in out
        manifest = next(iter(ResultsStore(store).manifests("churn")))
        assert manifest.config["write_pipeline"] is True
        assert manifest.config["max_immutable_memtables"] == 3
        assert manifest.config["flush_workers"] == 2
        cells = _manifest_cells(manifest)
        assert cells, "manifest has no strategy cells"
        for cell in cells:
            assert cell["write_pipeline"] is True
            assert cell["ingest_wall_seconds_mean"] > 0.0
            assert "write_stall_count_mean" in cell
            assert "flush_overlap_fraction_mean" in cell

    def test_serial_report_has_no_pipeline_columns(self, capsys):
        code = main(["run", "churn", "--runs", "1", "--no-store"] + TINY_SETS)
        assert code == 0
        out = capsys.readouterr().out
        assert "ingest s" not in out
        assert "overlap%" not in out

    def test_wal_sync_every_reaches_config(self, capsys, tmp_path):
        store = tmp_path / "runs"
        code = main(
            [
                "run", "churn", "--runs", "1", "--store", str(store),
                "--storage", "disk", "--wal-sync-every", "16",
            ]
            + TINY_SETS
        )
        assert code == 0
        manifest = next(iter(ResultsStore(store).manifests("churn")))
        assert manifest.config["wal_sync_every"] == 16
        assert manifest.config["storage"] == "disk"

    def test_verbose_mentions_pipeline(self, capsys):
        code = main(
            [
                "run", "churn", "--runs", "1", "--no-store", "--verbose",
                "--write-pipeline", "--flush-workers", "2",
            ]
            + TINY_SETS
        )
        assert code == 0
        assert "write pipeline: imm2 x2" in capsys.readouterr().out


def _manifest_cells(manifest):
    """Every per-strategy metrics dict in a manifest document."""
    found = []

    def walk(node):
        if isinstance(node, dict):
            if "cost_actual_mean" in node:
                found.append(node)
            for value in node.values():
                walk(value)
        elif isinstance(node, list):
            for value in node:
                walk(value)

    walk(manifest.document if hasattr(manifest, "document") else manifest.__dict__)
    return found
