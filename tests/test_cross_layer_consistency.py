"""Cross-layer property tests: the model and the substrate must agree.

The scheduling layer (repro.core) costs a schedule symbolically over key
sets; the execution layer (repro.lsm) performs the same schedule on real
sstables and counts entries moved.  On tombstone-free tables the two
must agree *exactly* — costactual is the same quantity viewed from both
sides.  Simulated parallel time must also be consistent with serial I/O
time under basic scheduling laws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergeInstance, merge_with
from repro.lsm import Record, SSTable, SimulatedDisk, execute_schedule


def tables_from_key_sets(key_sets):
    tables = []
    seqno = 0
    for table_id, keys in enumerate(key_sets):
        records = []
        for key in sorted(keys):
            seqno += 1
            records.append(Record.put(key, seqno, value_size=10))
        tables.append(SSTable(table_id, records))
    return tables


@st.composite
def key_set_lists(draw):
    n = draw(st.integers(2, 6))
    return [
        draw(st.frozensets(st.integers(0, 30), min_size=1, max_size=15))
        for _ in range(n)
    ]


class TestModelMatchesSubstrate:
    @given(key_set_lists())
    @settings(max_examples=30, deadline=None)
    def test_executed_cost_equals_replayed_cost(self, key_sets):
        instance = MergeInstance(tuple(key_sets))
        tables = tables_from_key_sets(key_sets)
        for policy in ("SI", "SO", "BT(I)"):
            schedule = merge_with(policy, instance).schedule
            replay = schedule.replay(instance)
            execution = execute_schedule(
                tables, schedule, SimulatedDisk(), next_table_id=100,
                drop_tombstones=False,
            )
            assert execution.cost_actual_entries == replay.actual_cost
            assert execution.cost_simplified_entries == replay.simplified_cost
            assert execution.output_table.key_set == replay.final_set

    @given(key_set_lists(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_parallel_time_laws(self, key_sets, lanes):
        """max(step) <= parallel <= serial; lanes=1 => parallel == serial."""
        instance = MergeInstance(tuple(key_sets))
        tables = tables_from_key_sets(key_sets)
        schedule = merge_with("BT(I)", instance).schedule
        serial = execute_schedule(
            tables, schedule, SimulatedDisk(), 100, lanes=1, drop_tombstones=False
        )
        parallel = execute_schedule(
            tables, schedule, SimulatedDisk(), 100, lanes=lanes, drop_tombstones=False
        )
        assert parallel.io_seconds == pytest.approx(serial.io_seconds)
        assert parallel.simulated_seconds <= serial.simulated_seconds + 1e-9
        if lanes == 1:
            assert parallel.simulated_seconds == pytest.approx(
                serial.simulated_seconds
            )
        # work conservation: c lanes cannot beat serial/c
        assert parallel.simulated_seconds >= serial.io_seconds / lanes - 1e-9

    @given(key_set_lists())
    @settings(max_examples=20, deadline=None)
    def test_disk_accounting_matches_execution(self, key_sets):
        instance = MergeInstance(tuple(key_sets))
        tables = tables_from_key_sets(key_sets)
        schedule = merge_with("SI", instance).schedule
        disk = SimulatedDisk()
        execution = execute_schedule(
            tables, schedule, disk, 100, drop_tombstones=False
        )
        assert disk.stats.bytes_read == execution.bytes_read
        assert disk.stats.bytes_written == execution.bytes_written
        # bytes moved are proportional to entries moved (uniform entries)
        entry_bytes = tables[0].records[0].size_bytes
        assert execution.bytes_read + execution.bytes_written == (
            execution.cost_actual_entries * entry_bytes
        )
