"""The legacy entry points keep working with byte-identical stdout.

``python -m repro.simulator`` and ``python -m repro.analysis.experiments``
are deprecation shims over the unified CLI's machinery.  These tests pin
the contract: on a small config the shims' stdout is byte-identical to
the canonical rendering of the same computation (the deprecation note
goes to stderr only), and the figure shim prints exactly what
``python -m repro figures`` prints for the same request.
"""

from __future__ import annotations

from repro.analysis import experiments
from repro.analysis.experiments import ExperimentResult
from repro.analysis.experiments import main as experiments_main
from repro.cli import main as cli_main
from repro.scenarios.runner import render_comparison_table
from repro.simulator import SimulationConfig, run_comparison
from repro.simulator.__main__ import main as simulator_main

TINY_ARGS = [
    "--recordcount", "120",
    "--operationcount", "600",
    "--memtable", "120",
    "--runs", "1",
    "--update-fraction", "0.5",
    "--strategies", "SI,RANDOM",
    "--seed", "3",
]


class TestSimulatorShim:
    def test_stdout_byte_identical_to_canonical_rendering(self, capsys):
        """The shim prints exactly the historical comparison table."""
        assert simulator_main(TINY_ARGS) == 0
        captured = capsys.readouterr()

        config = SimulationConfig(
            recordcount=120,
            operationcount=600,
            memtable_capacity=120,
            distribution="latest",
            update_fraction=0.5,
            k=2,
            seed=3,
            data_plane="auto",
        )
        labels = ("SI", "RANDOM")
        comparison = run_comparison(config, labels, runs=1, jobs=1)
        expected = render_comparison_table(config, comparison, labels) + "\n"

        # costs/LOPT columns are deterministic; the overhead column
        # rounds to 3 digits, far above wall-clock jitter at this scale.
        assert captured.out == expected

    def test_deprecation_note_on_stderr_only(self, capsys):
        assert simulator_main(TINY_ARGS) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "deprecated" not in captured.out


class TestExperimentsShim:
    def test_stdout_byte_identical_to_unified_figures(self, capsys, monkeypatch):
        """Shim and ``repro figures`` print the same bytes for one request.

        ``run_experiment`` is stubbed so the comparison exercises the
        whole CLI plumbing (parsing, dispatch, printing, --out handling)
        without a paper-scale sweep.
        """
        calls = []

        def fake_run_experiment(experiment_id, **kwargs):
            calls.append((experiment_id, kwargs))
            return [
                ExperimentResult(
                    experiment_id,
                    "stub title",
                    "stub body",
                    {"SI": [(0.0, 1.0)]},
                    {"runs": kwargs.get("runs")},
                )
            ]

        monkeypatch.setattr(experiments, "run_experiment", fake_run_experiment)

        assert experiments_main(["fig7a", "--runs", "2", "--jobs", "3"]) == 0
        shim = capsys.readouterr()
        assert cli_main(["figures", "fig7a", "--runs", "2", "--jobs", "3"]) == 0
        unified = capsys.readouterr()

        assert shim.out == unified.out
        assert shim.out.startswith("== fig7a: stub title ==")
        assert "deprecated" in shim.err
        assert "deprecated" not in unified.err
        # both invocations parsed to the same request
        assert calls[0] == calls[1]

    def test_out_writes_files(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(
            experiments,
            "run_experiment",
            lambda experiment_id, **kwargs: [
                ExperimentResult(experiment_id, "t", "body", {}, {})
            ],
        )
        out_dir = tmp_path / "figs"
        assert experiments_main(["fig8", "--out", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "fig8.txt").read_text() == "t\n\nbody\n"
