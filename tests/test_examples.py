"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests execute the
fast ones end-to-end (the YCSB pipeline example runs in its reduced
default mode) so a refactor can never silently break them.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "adversarial_instances.py",
    "submodular_costs.py",
    "lsm_engine_demo.py",
    "background_compaction.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_reports_paper_costs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "= 45" in output  # BALANCETREE (Figure 4)
    assert "= 47" in output  # SMALLESTINPUT (Figure 5)
    assert "= 40" in output  # SMALLESTOUTPUT (Figure 6)
    assert "optimal" in output.lower()


def test_ycsb_compaction_example_reduced(capsys, monkeypatch):
    """The heavier pipeline example, in its reduced default mode."""
    monkeypatch.setattr(sys, "argv", ["ycsb_compaction.py"])
    runpy.run_path(str(EXAMPLES_DIR / "ycsb_compaction.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "RANDOM" in output and "BT(I)" in output
    assert "cost/LOPT" in output
