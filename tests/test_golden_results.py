"""Golden regression tests against the committed ``results/*.txt`` tables.

The figure entry points are re-run at the committed seed scale and
compared against the artifacts checked into ``results/``:

* ``fig7a`` and ``fig8`` are fully deterministic (costs, LOPT, ratios
  derive only from seeded workloads and the simulated disk), so the
  regenerated files must match the committed ones byte for byte.
* ``fig7b``'s time columns mix the deterministic simulated I/O seconds
  with *wall-clock* strategy overhead, so its values are compared
  structurally and within a generous tolerance instead.

These run the paper-scale sweeps (minutes, not seconds) and are marked
``slow``; select them with ``pytest -m slow tests/test_golden_results.py``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.experiments import figure7, figure8

pytestmark = pytest.mark.slow

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_NUMBER = re.compile(r"-?[\d,]+(?:\.\d+)?")


def committed(name: str) -> str:
    path = RESULTS_DIR / f"{name}.txt"
    assert path.exists(), f"golden file {path} is missing"
    return path.read_text()


def rendered(result) -> str:
    """The exact file content the benches write for an ExperimentResult."""
    return f"{result.title}\n\n{result.text}\n"


def table_rows(text: str) -> list[list[float]]:
    """Numeric rows of the first table in a rendered figure panel.

    Rows are the lines after the ``---`` header rule and before the
    blank line that separates the table from the ASCII plot.
    """
    lines = text.splitlines()
    start = next(
        index for index, line in enumerate(lines) if set(line) <= {"-", " "} and "-" in line
    )
    rows = []
    for line in lines[start + 1 :]:
        if not line.strip():
            break
        cells = _NUMBER.findall(line)
        if cells:
            rows.append([float(cell.replace(",", "")) for cell in cells])
    return rows


@pytest.fixture(scope="module")
def fig7_panels():
    """One full-scale figure-7 sweep shared by the 7a and 7b goldens.

    Serial on purpose: 7b's tolerance band compares *measured* strategy
    overhead, and running ``jobs`` workers on fewer cores inflates
    wall-clock readings through scheduler contention.  The parallel
    runner is certified by the jobs=4 byte goldens below, whose panels
    contain only deterministic values.
    """
    return figure7(fast=False)


class TestFigure7aGolden:
    def test_costs_match_committed_bytes(self, fig7_panels):
        """The (default) fast data plane reproduces the committed bytes."""
        fig7a, _ = fig7_panels
        assert rendered(fig7a) == committed("fig7a")

    def test_costs_match_committed_bytes_under_jobs4(self):
        """The parallel sweep runner cannot perturb the cost panel."""
        fig7a, _ = figure7(fast=False, jobs=4)
        assert rendered(fig7a) == committed("fig7a")


class TestFigure7bGolden:
    """fig7b mixes wall clock in; compare structure, not bytes."""

    def test_row_shape_matches(self, fig7_panels):
        _, fig7b = fig7_panels
        golden_rows = table_rows(committed("fig7b"))
        fresh_rows = table_rows(rendered(fig7b))
        assert len(fresh_rows) == len(golden_rows)
        assert [row[0] for row in fresh_rows] == [row[0] for row in golden_rows]
        assert all(len(f) == len(g) for f, g in zip(fresh_rows, golden_rows))

    def test_times_within_tolerance(self, fig7_panels):
        _, fig7b = fig7_panels
        golden_rows = table_rows(committed("fig7b"))
        fresh_rows = table_rows(rendered(fig7b))
        for fresh, golden in zip(fresh_rows, golden_rows):
            # columns: update%, then (mean, std) x 5 strategies; compare
            # the means (odd indices 1,3,..) with wall-clock headroom.
            for column in range(1, len(golden), 2):
                assert fresh[column] == pytest.approx(
                    golden[column], rel=0.5, abs=0.05
                ), f"fig7b x={golden[0]} column {column} drifted"

    def test_strategy_ordering_preserved(self, fig7_panels):
        """BT(I) is the fastest strategy at every update %% (Figure 7b)."""
        _, fig7b = fig7_panels
        for row in table_rows(rendered(fig7b)):
            means = row[1::2]
            bt_i = means[2]  # SI, SO, BT(I), BT(O), RANDOM
            assert bt_i == min(means)


class TestFigure8Golden:
    def test_matches_committed_bytes_under_jobs4(self):
        """Fig8's table holds only deterministic values (costs, LOPT,
        ratios, slopes), so one jobs=4 fast-plane run certifies both the
        columnar pipeline and the parallel runner byte-for-byte."""
        result = figure8(fast=False, jobs=4)
        assert rendered(result) == committed("fig8")
