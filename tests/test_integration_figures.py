"""Integration tests: the paper's figure shapes at tiny scale.

The benchmark suite regenerates the figures at paper scale; these tests
protect the same qualitative claims inside the ordinary test run, using
a workload small enough to finish in seconds.
"""

from dataclasses import replace

import pytest

from repro.analysis import linear_fit, log_log_fit
from repro.simulator import (
    SimulationConfig,
    generate_sstables,
    run_strategy,
    strategy_labels,
    sweep_memtable_capacity,
    sweep_update_fraction,
)

TINY = SimulationConfig(
    recordcount=250,
    operationcount=4000,
    memtable_capacity=250,
    distribution="latest",
    update_fraction=0.0,
    seed=13,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    return sweep_update_fraction(TINY, (0.0, 0.5, 1.0), strategy_labels(), runs=1)


class TestFigure7Shapes:
    def test_random_worst_at_low_updates(self, tiny_sweep):
        point = tiny_sweep.points[0].per_strategy
        for label in ("SI", "SO", "BT(I)", "BT(O)"):
            assert point[label].cost_actual_mean < point["RANDOM"].cost_actual_mean

    def test_random_converges_at_full_updates(self, tiny_sweep):
        point = tiny_sweep.points[-1].per_strategy
        best = min(
            point[label].cost_actual_mean for label in ("SI", "SO", "BT(I)", "BT(O)")
        )
        assert point["RANDOM"].cost_actual_mean <= best * 1.3

    def test_cost_decreases_with_updates(self, tiny_sweep):
        for label in strategy_labels():
            costs = [p.per_strategy[label].cost_actual_mean for p in tiny_sweep.points]
            assert costs[0] > costs[-1]

    def test_bt_fastest_so_slowest(self, tiny_sweep):
        for point in tiny_sweep.points:
            times = {
                label: agg.simulated_seconds_mean + agg.strategy_overhead_mean
                for label, agg in point.per_strategy.items()
            }
            assert times["BT(I)"] == min(times.values())
            assert times["SO"] >= times["SI"]


class TestFigure8Shape:
    def test_parallel_loglog_lines(self):
        sweep = sweep_memtable_capacity(
            (10, 40, 160), labels=("BT(I)",), runs=1, n_sstables=100
        )
        xs = [point.x for point in sweep.points]
        bt = [point.per_strategy["BT(I)"].cost_actual_mean for point in sweep.points]
        bound = [point.per_strategy["BT(I)"].lopt_entries_mean for point in sweep.points]
        bt_fit = log_log_fit(xs, bt)
        bound_fit = log_log_fit(xs, bound)
        assert abs(bt_fit.slope - bound_fit.slope) < 0.2
        ratios = [c / b for c, b in zip(bt, bound)]
        assert max(ratios) / min(ratios) < 1.7


class TestFigure9Shape:
    def test_time_linear_in_cost(self):
        points = []
        for fraction in (0.0, 0.5, 1.0):
            config = replace(TINY, update_fraction=fraction)
            tables = generate_sstables(config).tables
            result = run_strategy(tables, "SI", config)
            points.append((result.cost_actual, result.total_simulated_seconds))
        fit = linear_fit([c for c, _ in points], [t for _, t in points])
        assert fit.r >= 0.97
        assert fit.slope > 0
