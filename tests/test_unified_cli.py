"""Tests for the unified ``python -m repro`` CLI (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.scenarios import REGISTRY, ResultsStore, Scenario

TINY_SETS = [
    "--set", "recordcount=150",
    "--set", "operationcount=1500",
    "--set", "memtable_capacity=150",
]


class TestListScenarios:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY.names():
            assert name in out
        # legacy figures and >=3 presets visible (acceptance criterion)
        for name in ("fig7a", "fig7b", "fig8", "fig9a", "fig9b"):
            assert name in out
        assert len([s for s in REGISTRY.scenarios("preset")]) >= 3

    def test_tag_filter(self, capsys):
        assert main(["list-scenarios", "--tag", "preset"]) == 0
        out = capsys.readouterr().out
        assert "read-heavy" in out
        assert "fig7a" not in out

    def test_json_dump_roundtrips(self, capsys):
        assert main(["list-scenarios", "--json"]) == 0
        specs = json.loads(capsys.readouterr().out)
        assert len(specs) == len(REGISTRY)
        for spec in specs:
            assert Scenario.from_dict(spec) == REGISTRY.get(spec["name"])


class TestRun:
    def test_run_writes_manifest(self, capsys, tmp_path):
        store_dir = tmp_path / "runs"
        code = main(
            ["run", "churn", "--runs", "1", "--store", str(store_dir)] + TINY_SETS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "churn" in out and "costactual" in out
        assert "[manifest written to" in out
        manifests = list(ResultsStore(store_dir).manifests("churn"))
        assert len(manifests) == 1
        assert manifests[0].config["operationcount"] == 1500

    def test_no_store(self, capsys, tmp_path):
        code = main(["run", "churn", "--runs", "1", "--no-store"] + TINY_SETS)
        assert code == 0
        assert "[manifest" not in capsys.readouterr().out

    def test_verbose_surfaces_the_data_plane(self, capsys):
        code = main(
            ["run", "churn", "--runs", "1", "--no-store", "--verbose"]
            + TINY_SETS
        )
        assert code == 0
        assert "[data plane: fast" in capsys.readouterr().out
        code = main(
            ["run", "churn", "--runs", "1", "--no-store", "--verbose",
             "--data-plane", "reference"] + TINY_SETS
        )
        assert code == 0
        assert "[data plane: reference" in capsys.readouterr().out

    def test_header_always_shows_the_plane(self, capsys):
        code = main(["run", "churn", "--runs", "1", "--no-store"] + TINY_SETS)
        assert code == 0
        assert "plane=fast" in capsys.readouterr().out

    def test_storage_disk_smoke(self, capsys):
        """--storage disk spills phase-1 tables through the on-disk
        sstable format; the run completes with the same output shape."""
        code = main(
            ["run", "churn", "--runs", "1", "--no-store", "--storage", "disk"]
            + TINY_SETS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "costactual" in out
        assert "storage=disk" in out

    def test_kernel_sweep_parameter(self, capsys):
        code = main(
            ["sweep", "--parameter", "k", "--values", "2,4",
             "--recordcount", "150", "--operationcount", "1500",
             "--memtable", "150", "--strategies", "SI", "--runs", "1",
             "--no-store"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adhoc-sweep" in out and "k" in out

    def test_run_spec_file(self, capsys, tmp_path):
        spec = REGISTRY.get("read-heavy").to_dict()
        spec["config"].update(
            recordcount=150, operationcount=1000, memtable_capacity=150
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        code = main(["run", "--spec", str(path), "--runs", "1", "--no-store"])
        assert code == 0
        assert "read-heavy" in capsys.readouterr().out

    def test_missing_scenario_and_spec_errors(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_unknown_scenario_is_clean_error(self, capsys):
        assert main(["run", "nope", "--no-store"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_strategy_and_seed_overrides(self, capsys):
        code = main(
            ["run", "churn", "--runs", "1", "--no-store", "--strategies",
             "SI,RANDOM", "--seed", "9"] + TINY_SETS
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seed=9" in out
        assert "SO" not in out.split("config:")[1]  # only SI/RANDOM rows

    def test_bad_set_value_is_clean_error(self, capsys):
        assert (
            main(["run", "churn", "--no-store", "--set", "k=1"] + TINY_SETS) == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_non_numeric_set_value_is_clean_error(self, capsys):
        """--set k=two reaches a validation comparison; no raw traceback."""
        assert (
            main(["run", "churn", "--no-store", "--set", "k=two"] + TINY_SETS)
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_zero_runs_is_clean_error(self, capsys):
        assert main(["run", "churn", "--no-store", "--runs", "0"] + TINY_SETS) == 2
        assert "error:" in capsys.readouterr().err

    def test_incomplete_spec_file_is_clean_error(self, capsys, tmp_path):
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps({"name": "x"}))  # missing title/config
        assert main(["run", "--spec", str(path), "--no-store"]) == 2
        assert "invalid scenario spec" in capsys.readouterr().err

    def test_unreadable_or_corrupt_spec_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["run", "--spec", str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["run", "--spec", str(bad)])


class TestSweep:
    def test_adhoc_sweep(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--parameter", "update_fraction",
                "--values", "0,1",
                "--recordcount", "150",
                "--operationcount", "1000",
                "--memtable", "150",
                "--runs", "1",
                "--strategies", "SI,RANDOM",
                "--store", str(tmp_path / "runs"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adhoc-sweep" in out
        assert "update_percentage" in out
        manifest = next(ResultsStore(tmp_path / "runs").manifests("adhoc-sweep"))
        assert {cell["x"] for cell in manifest.cells} == {0.0, 100.0}


class TestBenchTrends:
    @staticmethod
    def _write_snapshot(directory, speedup, seconds, cpu_count=None):
        directory.mkdir(parents=True, exist_ok=True)
        document = {
            "bench": "demo",
            "fast_mode": False,
            "speedup": speedup,
            "optimized_seconds": seconds,
        }
        if cpu_count is not None:
            document["machine"] = {"cpu_count": cpu_count}
        (directory / "BENCH_demo.json").write_text(json.dumps(document))

    def test_single_snapshot_table(self, capsys, tmp_path):
        self._write_snapshot(tmp_path / "a", 8.0, 0.1)
        assert main(["bench-trends", str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "bench: demo" in out and "speedup" in out
        assert "single snapshot" in out

    def test_regression_flagged_and_fails(self, capsys, tmp_path):
        self._write_snapshot(tmp_path / "old", 8.0, 0.1)
        self._write_snapshot(tmp_path / "new", 4.0, 0.1)  # speedup halved
        code = main(
            [
                "bench-trends",
                str(tmp_path / "old"),
                str(tmp_path / "new"),
                "--fail-on-regression",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert "demo:speedup" in out

    def test_improvement_not_flagged(self, capsys, tmp_path):
        self._write_snapshot(tmp_path / "old", 4.0, 0.2)
        self._write_snapshot(tmp_path / "new", 8.0, 0.1)
        code = main(
            ["bench-trends", str(tmp_path / "old"), str(tmp_path / "new"),
             "--fail-on-regression"]
        )
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_cross_machine_movement_does_not_fail(self, capsys, tmp_path):
        """A worse number on a different machine is not a regression."""
        self._write_snapshot(tmp_path / "old", 8.0, 0.1, cpu_count=8)
        self._write_snapshot(tmp_path / "new", 2.0, 0.4, cpu_count=1)
        code = main(
            ["bench-trends", str(tmp_path / "old"), str(tmp_path / "new"),
             "--fail-on-regression"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CROSS-MACHINE" in out
        assert "0 regression(s)" in out

    def test_same_machine_movement_still_fails(self, capsys, tmp_path):
        self._write_snapshot(tmp_path / "old", 8.0, 0.1, cpu_count=4)
        self._write_snapshot(tmp_path / "new", 2.0, 0.4, cpu_count=4)
        code = main(
            ["bench-trends", str(tmp_path / "old"), str(tmp_path / "new"),
             "--fail-on-regression"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_reads_committed_results_dir(self, capsys):
        """The repo's own results/ snapshots render without error."""
        from pathlib import Path

        results = Path(__file__).resolve().parent.parent / "results"
        assert main(["bench-trends", str(results)]) == 0
        out = capsys.readouterr().out
        assert "bench:" in out

    def test_missing_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench-trends", str(tmp_path / "missing")])
