"""Tests for the YCSB key-access distributions."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.ycsb import (
    LatestChooser,
    ScrambledZipfianChooser,
    SequentialChooser,
    UniformChooser,
    ZipfianChooser,
    available_distributions,
    make_chooser,
)


def draw(chooser, count: int, item_count: int, seed: int = 0) -> list[int]:
    rng = random.Random(seed)
    return [chooser.next(rng, item_count) for _ in range(count)]


class TestRegistry:
    def test_available(self):
        names = available_distributions()
        assert {"uniform", "zipfian", "latest", "scrambled_zipfian"} <= set(names)

    def test_make_chooser(self):
        assert isinstance(make_chooser("uniform"), UniformChooser)
        assert isinstance(make_chooser("ZIPFIAN"), ZipfianChooser)

    def test_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            make_chooser("pareto")


class TestUniform:
    def test_range(self):
        values = draw(UniformChooser(), 2000, 50)
        assert min(values) >= 0 and max(values) < 50

    def test_roughly_flat(self):
        values = draw(UniformChooser(), 20000, 10)
        counts = Counter(values)
        for key in range(10):
            assert 1600 <= counts[key] <= 2400  # expected 2000

    def test_item_count_validation(self):
        with pytest.raises(WorkloadError):
            UniformChooser().next(random.Random(0), 0)


class TestZipfian:
    def test_range(self):
        values = draw(ZipfianChooser(), 5000, 100)
        assert min(values) >= 0 and max(values) < 100

    def test_rank_frequency_decreasing(self):
        values = draw(ZipfianChooser(), 50000, 1000)
        counts = Counter(values)
        # key 0 should dominate and top keys should be ordered overall
        assert counts[0] > counts[10] > counts[200]

    def test_head_concentration(self):
        """With theta=0.99 the top 10% of keys take well over half the mass."""
        values = draw(ZipfianChooser(), 50000, 1000)
        counts = Counter(values)
        head = sum(counts[k] for k in range(100))
        assert head / len(values) > 0.5

    def test_theta_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianChooser(theta=1.0)
        with pytest.raises(WorkloadError):
            ZipfianChooser(theta=0.0)

    def test_single_item(self):
        assert ZipfianChooser().next(random.Random(0), 1) == 0

    def test_growing_item_count(self):
        """Incremental zeta extension matches a fresh chooser."""
        grown = ZipfianChooser()
        rng = random.Random(1)
        for count in (10, 100, 1000):
            grown.next(rng, count)
        fresh = ZipfianChooser()
        fresh.next(random.Random(2), 1000)
        assert grown._zetan == pytest.approx(fresh._zetan)
        assert grown._n == fresh._n == 1000

    def test_shrinking_item_count_recomputes(self):
        chooser = ZipfianChooser()
        rng = random.Random(3)
        chooser.next(rng, 1000)
        chooser.next(rng, 10)  # defensive path
        assert chooser._n == 10


class TestScrambledZipfian:
    def test_range(self):
        values = draw(ScrambledZipfianChooser(), 5000, 97)
        assert min(values) >= 0 and max(values) < 97

    def test_hot_keys_not_low_numbered(self):
        """Scrambling moves the hottest key away from index 0 (w.h.p.)."""
        values = draw(ScrambledZipfianChooser(), 50000, 1000)
        counts = Counter(values)
        hottest = counts.most_common(1)[0][0]
        assert hottest != 0

    def test_still_skewed(self):
        values = draw(ScrambledZipfianChooser(), 50000, 1000)
        counts = Counter(values)
        top = counts.most_common(100)
        assert sum(c for _, c in top) / len(values) > 0.5


class TestLatest:
    def test_range(self):
        values = draw(LatestChooser(), 5000, 100)
        assert min(values) >= 0 and max(values) < 100

    def test_newest_key_most_popular(self):
        values = draw(LatestChooser(), 50000, 1000)
        counts = Counter(values)
        assert counts[999] == max(counts.values())
        assert counts[999] > counts[500] > 0

    def test_tracks_growing_keyspace(self):
        chooser = LatestChooser()
        rng = random.Random(5)
        small = [chooser.next(rng, 100) for _ in range(2000)]
        large = [chooser.next(rng, 10_000) for _ in range(2000)]
        assert max(small) < 100
        # after growth, the popular keys move to the new tail
        assert Counter(large)[9999] > 0


class TestSequential:
    def test_cycles(self):
        chooser = SequentialChooser()
        values = draw(chooser, 7, 3)
        assert values == [0, 1, 2, 0, 1, 2, 0]


class TestDeterminism:
    @pytest.mark.parametrize("name", ["uniform", "zipfian", "latest", "scrambled_zipfian"])
    def test_same_seed_same_stream(self, name):
        a = draw(make_chooser(name), 500, 200, seed=7)
        b = draw(make_chooser(name), 500, 200, seed=7)
        assert a == b

    @pytest.mark.parametrize("name", ["uniform", "zipfian", "latest"])
    def test_different_seed_differs(self, name):
        a = draw(make_chooser(name), 500, 200, seed=7)
        b = draw(make_chooser(name), 500, 200, seed=8)
        assert a != b


class TestNextBatch:
    """The batch API is bit-identical to the scalar next() loop."""

    GROWING = [1, 1, 3, 3, 3, 10, 10, 50, 50, 51, 52, 100] * 20 + list(
        range(100, 700, 3)
    )
    NON_MONOTONIC = [5] * 40 + [9] * 40 + [3] * 5 + [11] * 40

    @pytest.mark.parametrize(
        "name", ["uniform", "zipfian", "latest", "scrambled_zipfian", "hotspot"]
    )
    @pytest.mark.parametrize("counts", [GROWING, NON_MONOTONIC])
    def test_matches_scalar_loop(self, name, counts):
        scalar_chooser = make_chooser(name)
        scalar_rng = random.Random(13)
        expected = [scalar_chooser.next(scalar_rng, c) for c in counts]
        batch_chooser = make_chooser(name)
        batch_rng = random.Random(13)
        assert list(batch_chooser.next_batch(batch_rng, counts)) == expected

    @pytest.mark.parametrize("name", ["zipfian", "latest", "scrambled_zipfian"])
    def test_state_continues_across_batches(self, name):
        counts = self.GROWING
        scalar_chooser = make_chooser(name)
        scalar_rng = random.Random(3)
        expected = [scalar_chooser.next(scalar_rng, c) for c in counts]
        mixed_chooser = make_chooser(name)
        mixed_rng = random.Random(3)
        got = list(mixed_chooser.next_batch(mixed_rng, counts[:100]))
        got += [mixed_chooser.next(mixed_rng, c) for c in counts[100:200]]
        got += list(mixed_chooser.next_batch(mixed_rng, counts[200:]))
        assert got == expected

    @pytest.mark.parametrize(
        "name", ["uniform", "zipfian", "latest", "scrambled_zipfian"]
    )
    def test_pure_fallback_matches(self, name, monkeypatch):
        import repro.ycsb.distributions as distributions_module

        with_numpy = list(
            make_chooser(name).next_batch(random.Random(5), self.GROWING)
        )
        monkeypatch.setattr(distributions_module, "_np", None)
        pure = list(make_chooser(name).next_batch(random.Random(5), self.GROWING))
        assert pure == with_numpy

    def test_empty_batch(self):
        assert list(ZipfianChooser().next_batch(random.Random(0), [])) == []

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            ZipfianChooser().next_batch(random.Random(0), [3, 0, 5])

    def test_decode_batch_validates(self):
        chooser = ZipfianChooser()
        with pytest.raises(WorkloadError):
            chooser.decode_batch([0.5], [3, 4])  # length mismatch
        with pytest.raises(WorkloadError):
            chooser.decode_batch([0.5], [1])  # single-key space

    def test_zeta_extension_vectorized_matches_loop(self):
        vectorized = ZipfianChooser()
        vectorized._extend_zeta(5000)
        scalar = ZipfianChooser()
        theta = scalar.theta
        total = 0.0
        for i in range(1, 5001):
            total += 1.0 / (i**theta)
        assert vectorized._zetan == total
        incremental = ZipfianChooser()
        incremental._extend_zeta(321)
        incremental._extend_zeta(5000)
        assert incremental._zetan == vectorized._zetan

    def test_two_key_space_supported(self):
        """zeta(2) equals the second head cut, so every draw lands on key
        0 or 1 and the 0/0-prone eta expression is never evaluated."""
        rng = random.Random(4)
        chooser = ZipfianChooser()
        scalar = [chooser.next(rng, 2) for _ in range(200)]
        assert set(scalar) <= {0, 1}
        batch = make_chooser("zipfian").next_batch(random.Random(4), [2] * 200)
        assert list(batch) == scalar
        for name in ("latest", "scrambled_zipfian"):
            values = make_chooser(name).next_batch(random.Random(4), [2] * 50)
            assert set(int(v) for v in values) <= {0, 1}
