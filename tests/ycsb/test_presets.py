"""Tests for the YCSB A-F presets and the hotspot distribution."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.ycsb import (
    CoreWorkload,
    HotspotChooser,
    OperationType,
    available_presets,
    make_chooser,
    workload_preset,
)


class TestPresets:
    def test_available(self):
        assert available_presets() == ("A", "B", "C", "D", "E", "F")

    def test_unknown(self):
        with pytest.raises(WorkloadError):
            workload_preset("Z")

    def test_workload_a_mix(self):
        config = workload_preset("A", operationcount=4000, seed=1)
        workload = CoreWorkload(config)
        list(workload.load_operations())
        counts = Counter(op.type for op in workload.run_operations())
        assert 1700 <= counts[OperationType.READ] <= 2300
        assert 1700 <= counts[OperationType.UPDATE] <= 2300

    def test_workload_c_read_only(self):
        config = workload_preset("c", operationcount=500)
        workload = CoreWorkload(config)
        list(workload.load_operations())
        assert all(
            op.type is OperationType.READ for op in workload.run_operations()
        )

    def test_workload_d_uses_latest(self):
        config = workload_preset("D")
        assert config.distribution == "latest"
        assert config.insert_proportion == 0.05

    def test_workload_e_scans(self):
        config = workload_preset("E", operationcount=200)
        workload = CoreWorkload(config)
        list(workload.load_operations())
        types = Counter(op.type for op in workload.run_operations())
        assert types[OperationType.SCAN] > types[OperationType.INSERT]

    def test_overrides(self):
        config = workload_preset("A", recordcount=77, distribution="uniform")
        assert config.recordcount == 77
        assert config.distribution == "uniform"


class TestHotspot:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            HotspotChooser(hot_fraction=0.0)
        with pytest.raises(WorkloadError):
            HotspotChooser(hot_access_fraction=1.0)

    def test_registered(self):
        assert isinstance(make_chooser("hotspot"), HotspotChooser)

    def test_hot_set_dominates(self):
        chooser = HotspotChooser(hot_fraction=0.2, hot_access_fraction=0.8)
        rng = random.Random(0)
        values = [chooser.next(rng, 1000) for _ in range(20_000)]
        hot = sum(1 for v in values if v < 200)
        assert 0.75 <= hot / len(values) <= 0.85

    def test_range(self):
        chooser = HotspotChooser()
        rng = random.Random(1)
        values = [chooser.next(rng, 50) for _ in range(2000)]
        assert min(values) >= 0 and max(values) < 50

    def test_tiny_keyspace(self):
        chooser = HotspotChooser()
        rng = random.Random(2)
        assert chooser.next(rng, 1) == 0
