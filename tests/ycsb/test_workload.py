"""Tests for the YCSB core workload (load + run phases)."""

import pytest

from repro.errors import WorkloadError
from repro.ycsb import CoreWorkload, Operation, OperationType, WorkloadConfig


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_bad_recordcount(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(recordcount=0)

    def test_rejects_negative_operationcount(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(operationcount=-1)

    def test_rejects_negative_proportion(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(update_proportion=-0.5)

    def test_rejects_all_zero_mix(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(update_proportion=0.0, operationcount=10)

    def test_all_zero_mix_ok_with_no_operations(self):
        WorkloadConfig(update_proportion=0.0, operationcount=0)

    def test_insert_update_mix_helper(self):
        config = WorkloadConfig.insert_update_mix(0.25, operationcount=100)
        assert config.update_proportion == 0.25
        assert config.insert_proportion == 0.75
        with pytest.raises(WorkloadError):
            WorkloadConfig.insert_update_mix(1.5)


class TestLoadPhase:
    def test_inserts_recordcount_keys(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=50, operationcount=0))
        ops = list(workload.load_operations())
        assert len(ops) == 50
        assert all(op.type is OperationType.INSERT for op in ops)
        assert [op.key for op in ops] == list(range(50))
        assert workload.inserted_count == 50

    def test_value_size_propagates(self):
        workload = CoreWorkload(
            WorkloadConfig(recordcount=3, operationcount=0, value_size=256)
        )
        assert all(op.value_size == 256 for op in workload.load_operations())


class TestRunPhase:
    def test_requires_load_first(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=10, operationcount=5))
        with pytest.raises(WorkloadError):
            next(workload.run_operations())

    def test_operation_count(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=10, operationcount=123))
        list(workload.load_operations())
        assert len(list(workload.run_operations())) == 123

    def test_pure_update_mix_touches_loaded_keys(self):
        config = WorkloadConfig(
            recordcount=20, operationcount=500, update_proportion=1.0
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert all(op.type is OperationType.UPDATE for op in ops)
        assert all(0 <= op.key < 20 for op in ops)
        assert workload.inserted_count == 20

    def test_pure_insert_mix_appends_fresh_keys(self):
        config = WorkloadConfig(
            recordcount=10,
            operationcount=30,
            update_proportion=0.0,
            insert_proportion=1.0,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert [op.key for op in ops] == list(range(10, 40))
        assert workload.inserted_count == 40

    def test_mixed_proportions_roughly_respected(self):
        config = WorkloadConfig(
            recordcount=100,
            operationcount=10_000,
            update_proportion=0.6,
            insert_proportion=0.4,
            seed=3,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        updates = sum(1 for op in ops if op.type is OperationType.UPDATE)
        assert 5500 <= updates <= 6500

    def test_inserts_grow_latest_window(self):
        """With 'latest', run-phase updates should hit recently inserted keys."""
        config = WorkloadConfig(
            recordcount=100,
            operationcount=4000,
            update_proportion=0.5,
            insert_proportion=0.5,
            distribution="latest",
            seed=1,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        updated = [op.key for op in workload.run_operations() if op.type is OperationType.UPDATE]
        # at least some updates land beyond the originally loaded range
        assert any(key >= 100 for key in updated)

    def test_scan_operations_have_length(self):
        config = WorkloadConfig(
            recordcount=10,
            operationcount=50,
            update_proportion=0.0,
            scan_proportion=1.0,
            max_scan_length=7,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert all(op.type is OperationType.SCAN for op in ops)
        assert all(1 <= op.scan_length <= 7 for op in ops)

    def test_deletes_are_writes(self):
        op = Operation(OperationType.DELETE, 5)
        assert op.is_write
        assert not Operation(OperationType.READ, 5).is_write


class TestDeterminism:
    def test_same_seed_same_ops(self):
        config = WorkloadConfig(recordcount=50, operationcount=500, seed=9)
        first = [
            (op.type, op.key) for op in CoreWorkload(config).all_operations()
        ]
        second = [
            (op.type, op.key) for op in CoreWorkload(config).all_operations()
        ]
        assert first == second

    def test_different_seed_differs(self):
        base = dict(recordcount=50, operationcount=500)
        a = [
            (op.type, op.key)
            for op in CoreWorkload(WorkloadConfig(seed=1, **base)).all_operations()
        ]
        b = [
            (op.type, op.key)
            for op in CoreWorkload(WorkloadConfig(seed=2, **base)).all_operations()
        ]
        assert a != b


class TestOpStreamColumns:
    """The columnar op stream == the scalar operation loop, per mix."""

    MIX_CONFIGS = {
        "writes-only": dict(insert_proportion=0.4, update_proportion=0.6),
        "read-heavy": dict(read_proportion=0.8, update_proportion=0.2),
        "scans": dict(
            read_proportion=0.1,
            scan_proportion=0.3,
            insert_proportion=0.3,
            update_proportion=0.3,
        ),
        "deletes": dict(
            delete_proportion=0.2, insert_proportion=0.4, update_proportion=0.4
        ),
        "all-read": dict(read_proportion=1.0, update_proportion=0.0),
    }

    @staticmethod
    def scalar_reference(config):
        """Write columns + op codes from the operation-at-a-time loop."""
        keynums, tombstones, codes = [], [], []
        for op in CoreWorkload(config).all_operations():
            codes.append(op.type.code)
            if not op.is_write:
                continue
            if op.type is OperationType.DELETE:
                tombstones.append(len(keynums))
            keynums.append(op.key)
        return keynums, tombstones, bytes(codes)

    @pytest.mark.parametrize("mix", sorted(MIX_CONFIGS))
    @pytest.mark.parametrize("distribution", ("uniform", "zipfian", "latest"))
    def test_stream_identical_to_scalar_loop(self, mix, distribution):
        config = WorkloadConfig(
            recordcount=120,
            operationcount=1500,
            distribution=distribution,
            seed=13,
            **self.MIX_CONFIGS[mix],
        )
        stream = CoreWorkload(config).op_stream_columns()
        keynums, tombstones, codes = self.scalar_reference(config)
        assert list(stream.write_keynums) == keynums
        assert stream.tombstone_positions == tombstones
        assert stream.op_codes == codes
        assert stream.total_operations == 120 + 1500 == len(stream.op_codes)
        assert stream.write_count == len(keynums)
        # The op-type column decodes back through CODE_OP_TYPES: its
        # write rows must agree with the write columns exactly.
        from repro.ycsb.operations import CODE_OP_TYPES

        decoded_writes = sum(
            1 for code in stream.op_codes if CODE_OP_TYPES[code].is_write
        )
        assert decoded_writes == stream.write_count

    def test_rng_state_reusable_after_stream(self):
        """Draws after the batch continue the scalar stream (zeta state
        and rng position both survive the vectorized decode)."""
        config = WorkloadConfig(
            recordcount=50,
            operationcount=400,
            distribution="zipfian",
            read_proportion=0.5,
            update_proportion=0.5,
            seed=3,
        )
        scalar = CoreWorkload(config)
        for _ in scalar.all_operations():
            pass
        batched = CoreWorkload(config)
        batched.op_stream_columns()
        follow_scalar = [
            op.key for op in _drain_run_ops(scalar, 20)
        ]
        follow_batched = [op.key for op in _drain_run_ops(batched, 20)]
        assert follow_scalar == follow_batched

    def test_supports_op_stream_covers_every_mix(self):
        for mix in self.MIX_CONFIGS.values():
            config = WorkloadConfig(recordcount=10, operationcount=10, **mix)
            assert CoreWorkload(config).supports_op_stream()

    def test_key_name_subclass_not_supported(self):
        class Named(CoreWorkload):
            def key_name(self, keynum):
                return f"user{keynum}"

        workload = Named(WorkloadConfig(recordcount=10, operationcount=10))
        assert not workload.supports_op_stream()
        with pytest.raises(WorkloadError):
            workload.op_stream_columns()

    def test_write_stream_columns_still_requires_writes_only(self):
        config = WorkloadConfig(
            recordcount=10,
            operationcount=10,
            read_proportion=0.5,
            update_proportion=0.5,
        )
        with pytest.raises(WorkloadError):
            CoreWorkload(config).write_stream_columns()


def _drain_run_ops(workload, count):
    """A few more run-phase operations from an already-driven workload."""
    from itertools import islice

    from dataclasses import replace as dc_replace

    more = dc_replace(workload.config, operationcount=count)
    workload.config = more
    return islice(workload.run_operations(), count)
