"""Tests for the YCSB core workload (load + run phases)."""

import pytest

from repro.errors import WorkloadError
from repro.ycsb import CoreWorkload, Operation, OperationType, WorkloadConfig


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_rejects_bad_recordcount(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(recordcount=0)

    def test_rejects_negative_operationcount(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(operationcount=-1)

    def test_rejects_negative_proportion(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(update_proportion=-0.5)

    def test_rejects_all_zero_mix(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(update_proportion=0.0, operationcount=10)

    def test_all_zero_mix_ok_with_no_operations(self):
        WorkloadConfig(update_proportion=0.0, operationcount=0)

    def test_insert_update_mix_helper(self):
        config = WorkloadConfig.insert_update_mix(0.25, operationcount=100)
        assert config.update_proportion == 0.25
        assert config.insert_proportion == 0.75
        with pytest.raises(WorkloadError):
            WorkloadConfig.insert_update_mix(1.5)


class TestLoadPhase:
    def test_inserts_recordcount_keys(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=50, operationcount=0))
        ops = list(workload.load_operations())
        assert len(ops) == 50
        assert all(op.type is OperationType.INSERT for op in ops)
        assert [op.key for op in ops] == list(range(50))
        assert workload.inserted_count == 50

    def test_value_size_propagates(self):
        workload = CoreWorkload(
            WorkloadConfig(recordcount=3, operationcount=0, value_size=256)
        )
        assert all(op.value_size == 256 for op in workload.load_operations())


class TestRunPhase:
    def test_requires_load_first(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=10, operationcount=5))
        with pytest.raises(WorkloadError):
            next(workload.run_operations())

    def test_operation_count(self):
        workload = CoreWorkload(WorkloadConfig(recordcount=10, operationcount=123))
        list(workload.load_operations())
        assert len(list(workload.run_operations())) == 123

    def test_pure_update_mix_touches_loaded_keys(self):
        config = WorkloadConfig(
            recordcount=20, operationcount=500, update_proportion=1.0
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert all(op.type is OperationType.UPDATE for op in ops)
        assert all(0 <= op.key < 20 for op in ops)
        assert workload.inserted_count == 20

    def test_pure_insert_mix_appends_fresh_keys(self):
        config = WorkloadConfig(
            recordcount=10,
            operationcount=30,
            update_proportion=0.0,
            insert_proportion=1.0,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert [op.key for op in ops] == list(range(10, 40))
        assert workload.inserted_count == 40

    def test_mixed_proportions_roughly_respected(self):
        config = WorkloadConfig(
            recordcount=100,
            operationcount=10_000,
            update_proportion=0.6,
            insert_proportion=0.4,
            seed=3,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        updates = sum(1 for op in ops if op.type is OperationType.UPDATE)
        assert 5500 <= updates <= 6500

    def test_inserts_grow_latest_window(self):
        """With 'latest', run-phase updates should hit recently inserted keys."""
        config = WorkloadConfig(
            recordcount=100,
            operationcount=4000,
            update_proportion=0.5,
            insert_proportion=0.5,
            distribution="latest",
            seed=1,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        updated = [op.key for op in workload.run_operations() if op.type is OperationType.UPDATE]
        # at least some updates land beyond the originally loaded range
        assert any(key >= 100 for key in updated)

    def test_scan_operations_have_length(self):
        config = WorkloadConfig(
            recordcount=10,
            operationcount=50,
            update_proportion=0.0,
            scan_proportion=1.0,
            max_scan_length=7,
        )
        workload = CoreWorkload(config)
        list(workload.load_operations())
        ops = list(workload.run_operations())
        assert all(op.type is OperationType.SCAN for op in ops)
        assert all(1 <= op.scan_length <= 7 for op in ops)

    def test_deletes_are_writes(self):
        op = Operation(OperationType.DELETE, 5)
        assert op.is_write
        assert not Operation(OperationType.READ, 5).is_write


class TestDeterminism:
    def test_same_seed_same_ops(self):
        config = WorkloadConfig(recordcount=50, operationcount=500, seed=9)
        first = [
            (op.type, op.key) for op in CoreWorkload(config).all_operations()
        ]
        second = [
            (op.type, op.key) for op in CoreWorkload(config).all_operations()
        ]
        assert first == second

    def test_different_seed_differs(self):
        base = dict(recordcount=50, operationcount=500)
        a = [
            (op.type, op.key)
            for op in CoreWorkload(WorkloadConfig(seed=1, **base)).all_operations()
        ]
        b = [
            (op.type, op.key)
            for op in CoreWorkload(WorkloadConfig(seed=2, **base)).all_operations()
        ]
        assert a != b
